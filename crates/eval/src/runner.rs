//! The imperative half of the harness: expand a plan into cells and run
//! them, in parallel, deterministically.
//!
//! # Determinism
//!
//! Every cell is a pure function of `(plan seed, scenario name,
//! mechanism id)`:
//!
//! * the workload is generated from the plan seed alone;
//! * the mechanism runs through [`Engine`] under
//!   [`cell_seed`](crate::digest::cell_seed), which derives from the
//!   cell's *names* — never from its position in the plan or the
//!   schedule;
//! * every attack and metric downstream is deterministic (no RNG, no
//!   hash-order-dependent float accumulation).
//!
//! Cells therefore fan out across threads freely: the report is
//! bit-identical for any `--threads` value, which the property suite
//! asserts and the golden corpus pins.

use rayon::prelude::*;

use mobipriv_attacks::{HomeAttack, PoiAttack, ReidentAttack, Tracker};
use mobipriv_core::Engine;
use mobipriv_metrics::{coverage, spatial, trips};
use mobipriv_synth::SynthOutput;

use crate::digest::{cell_seed, dataset_digest};
use crate::plan::{EvalPlan, MechanismSpec, ScenarioSpec};
use crate::report::{EvalCell, EvalReport, SCHEMA_VERSION};

/// Grid-cell size for the coverage metric, meters (matches the service
/// report headers).
const COVERAGE_CELL_M: f64 = 250.0;

/// Runs the plan on one worker thread per core.
pub fn evaluate(plan: &EvalPlan) -> EvalReport {
    evaluate_with(plan, None)
}

/// Runs the plan with the cell fan-out pinned to `threads` workers
/// (`None` = one per core). The report is identical for every value —
/// parallelism is a wall-clock decision, never an output decision.
pub fn evaluate_with(plan: &EvalPlan, threads: Option<usize>) -> EvalReport {
    // Generate each (scenario, seed) workload once; cells share it
    // read-only.
    let worlds: Vec<(ScenarioSpec, u64, SynthOutput)> = plan
        .scenarios
        .iter()
        .flat_map(|scenario| {
            plan.seeds
                .iter()
                .map(move |&seed| (*scenario, seed, scenario.generate(seed)))
        })
        .collect();
    let jobs: Vec<(&(ScenarioSpec, u64, SynthOutput), &MechanismSpec)> = worlds
        .iter()
        .flat_map(|world| plan.mechanisms.iter().map(move |m| (world, m)))
        .collect();
    let run = |job: &(&(ScenarioSpec, u64, SynthOutput), &MechanismSpec)| {
        let ((scenario, seed, world), mechanism) = job;
        run_cell(*scenario, *seed, world, mechanism)
    };
    let fan_out = || jobs.par_iter().map(run).collect::<Vec<EvalCell>>();
    let mut cells = match threads {
        Some(n) => rayon::with_num_threads(n.max(1), fan_out),
        None => fan_out(),
    };
    cells.sort_by(|a, b| {
        (&a.scenario, &a.mechanism, a.seed).cmp(&(&b.scenario, &b.mechanism, b.seed))
    });
    EvalReport {
        schema_version: SCHEMA_VERSION,
        plan: plan.name.clone(),
        cells,
    }
}

/// Times `f` and, when observability is on, folds the wall time into
/// the global `mobipriv_eval_stage_seconds{stage=…}` histogram. The
/// result bytes never depend on it: timing reads the clock around the
/// stage and writes to a sink the computation cannot see.
fn timed_stage<T>(stage: &'static str, f: impl FnOnce() -> T) -> T {
    if !mobipriv_obs::enabled() {
        return f();
    }
    let start = std::time::Instant::now();
    let out = f();
    mobipriv_obs::global()
        .histogram(
            "mobipriv_eval_stage_seconds",
            &[("stage", stage)],
            "Wall time per evaluation-cell stage",
        )
        .observe_duration(start.elapsed());
    out
}

/// Runs one cell: protect, attack four ways, measure utility.
fn run_cell(
    scenario: ScenarioSpec,
    seed: u64,
    world: &SynthOutput,
    mechanism: &MechanismSpec,
) -> EvalCell {
    let started = std::time::Instant::now();
    let mechanism_id = mechanism.id();
    let cseed = cell_seed(seed, scenario.name(), &mechanism_id);
    let built = timed_stage("build", || mechanism.build());
    // The engine runs sequentially *within* a cell — the harness
    // parallelizes at cell granularity, and engine output is
    // schedule-independent anyway, so nothing changes but the thread
    // accounting.
    let published = timed_stage("protect", || {
        Engine::sequential().protect(built.as_ref(), &world.dataset, cseed)
    });

    // Kerckhoffs: every profile/stay-based adversary knows the
    // mechanism and widens its clustering radii to the expected noise.
    // (The tracker has no such knob — its gate is kinematic.)
    let noise = mechanism.expected_noise_m();
    let poi = timed_stage("attack_poi", || {
        PoiAttack::tuned_for_noise(noise).run(&published, &world.truth)
    });
    // Threat model: the adversary saw the raw data once (e.g. a prior
    // unprotected release) and links the protected release back to it.
    let reident = timed_stage("attack_reident", || {
        ReidentAttack::tuned_for_noise(noise).run(&world.dataset, &published)
    });
    let tracker = timed_stage("attack_tracker", || Tracker::default().run(&published));
    let home = timed_stage("attack_home", || {
        HomeAttack::tuned_for_noise(noise).run(&published, &world.truth)
    });

    let (distortion, cover, trip) = timed_stage("metrics", || {
        (
            spatial::dataset_distortion_anonymous(&world.dataset, &published),
            coverage::coverage(&world.dataset, &published, COVERAGE_CELL_M),
            trips::trip_report(&world.dataset, &published),
        )
    });

    EvalCell {
        scenario: scenario.name().to_owned(),
        mechanism: mechanism_id,
        mechanism_name: built.name(),
        seed,
        cell_seed: cseed,
        input_traces: world.dataset.len() as u64,
        input_fixes: world.dataset.total_fixes() as u64,
        output_traces: published.len() as u64,
        output_fixes: published.total_fixes() as u64,
        digest: dataset_digest(&published),
        poi_recall: poi.overall.recall,
        poi_precision: poi.overall.precision,
        reident_accuracy: reident.accuracy_identity(),
        tracker_continuity: tracker.continuity,
        tracker_purity: tracker.purity,
        tracker_tracks: tracker.tracks as u64,
        home_accuracy: home.accuracy(),
        home_evaluated: home.evaluated as u64,
        distortion_mean_m: distortion.mean,
        distortion_p95_m: distortion.p95,
        coverage_f1: cover.f1,
        coverage_total_variation: cover.total_variation,
        trip_length_ks: trip.length_ks,
        trip_duration_ks: trip.duration_ks,
        // Timing only — never part of the canonical report bytes.
        wall_ms: started.elapsed().as_secs_f64() * 1_000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::EvalPlan;

    /// A two-cell plan small enough for unit tests.
    fn tiny_plan() -> EvalPlan {
        EvalPlan {
            name: "custom".to_owned(),
            scenarios: vec![ScenarioSpec::CrossingPaths],
            mechanisms: vec![
                MechanismSpec::Identity,
                MechanismSpec::Promesse { alpha_m: 100.0 },
            ],
            seeds: vec![7],
        }
    }

    #[test]
    fn report_covers_every_cell_in_sorted_order() {
        let report = evaluate(&tiny_plan());
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert_eq!(report.cells.len(), 2);
        let keys: Vec<(&str, &str)> = report
            .cells
            .iter()
            .map(|c| (c.scenario.as_str(), c.mechanism.as_str()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("crossing_paths", "promesse_a100"),
                ("crossing_paths", "raw"),
            ]
        );
    }

    #[test]
    fn identity_cell_republishes_the_input() {
        let report = evaluate(&tiny_plan());
        let raw = report.cells.iter().find(|c| c.mechanism == "raw").unwrap();
        assert_eq!(raw.input_fixes, raw.output_fixes);
        assert_eq!(raw.distortion_mean_m, 0.0);
        assert_eq!(raw.coverage_f1, 1.0);
        // Raw crossing-paths data leaks both users' POIs.
        assert!(raw.poi_recall > 0.8, "raw recall {}", raw.poi_recall);
    }

    #[test]
    fn promesse_cell_hides_pois_and_stays_spatially_close() {
        let report = evaluate(&tiny_plan());
        let cell = report
            .cells
            .iter()
            .find(|c| c.mechanism == "promesse_a100")
            .unwrap();
        assert!(cell.poi_recall < 0.3, "promesse recall {}", cell.poi_recall);
        assert!(
            cell.distortion_mean_m < 50.0,
            "promesse distortion {}",
            cell.distortion_mean_m
        );
    }

    #[test]
    fn thread_count_never_changes_the_report() {
        // Wall-clock timings differ between runs by nature; everything
        // else — including the canonical bytes — must not.
        let plan = tiny_plan();
        let one = evaluate_with(&plan, Some(1));
        let four = evaluate_with(&plan, Some(4));
        let free = evaluate(&plan);
        assert!(one
            .cells
            .iter()
            .zip(&four.cells)
            .all(|(a, b)| a.content_eq(b)));
        assert!(one
            .cells
            .iter()
            .zip(&free.cells)
            .all(|(a, b)| a.content_eq(b)));
        assert_eq!(one.to_json(), four.to_json(), "byte-identical JSON");
        assert_eq!(one.to_json(), free.to_json(), "byte-identical JSON");
    }

    #[test]
    fn filtering_the_plan_preserves_cell_results() {
        // The same (scenario, mechanism, seed) computes the same cell
        // whether or not other cells run beside it.
        let full = evaluate(&tiny_plan());
        let narrow = evaluate(&tiny_plan().with_mechanism("promesse_a100").unwrap());
        let from_full = full
            .cells
            .iter()
            .find(|c| c.mechanism == "promesse_a100")
            .unwrap();
        assert_eq!(narrow.cells.len(), 1);
        assert!(narrow.cells[0].content_eq(from_full));
    }

    #[test]
    fn cells_carry_a_wall_clock_timing() {
        let report = evaluate(&tiny_plan());
        assert!(report.cells.iter().all(|c| c.wall_ms > 0.0));
    }
}
