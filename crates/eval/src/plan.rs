//! The declarative half of the harness: *what* to evaluate.
//!
//! An [`EvalPlan`] is a cross-product — scenario presets × mechanism
//! configurations × plan seeds — that the runner expands into cells.
//! Both axes are data, not code: a spec names a preset plus its
//! parameters, builds the concrete generator/mechanism on demand, and
//! carries a stable machine id that the golden corpus, the CLI filters
//! and the `/v1/evaluate` query parameters all key on.

use mobipriv_core::{
    GeoInd, GridGeneralization, Identity, KDelta, Mechanism, MixZoneConfig, MixZones, Pipeline,
    Promesse, Pseudonymize,
};
use mobipriv_synth::{scenarios, SynthOutput};

/// One synthetic workload of the matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioSpec {
    /// `scenarios::commuter_town` — the default quantitative workload.
    CommuterTown {
        /// Number of simulated users.
        users: usize,
        /// Number of simulated days.
        days: usize,
    },
    /// `scenarios::dense_downtown` — hub-heavy, crossing-rich.
    DenseDowntown {
        /// Number of simulated users.
        users: usize,
        /// Number of simulated days.
        days: usize,
    },
    /// `scenarios::hub_rush` — a rush hour through one central hub.
    HubRush {
        /// Number of simulated users.
        users: usize,
        /// Fraction (0–1) routed straight through the hub.
        via_hub_fraction: f64,
    },
    /// `scenarios::crossing_paths` — the paper's Fig. 1 micro-scenario.
    CrossingPaths,
    /// `scenarios::random_walkers` — dwell-free random grid trips.
    RandomWalkers {
        /// Number of simulated users.
        users: usize,
        /// Back-to-back trips per user.
        trips: usize,
    },
    /// `scenarios::serving_day` — the service-benchmark workload.
    ServingDay {
        /// Number of simulated users.
        users: usize,
    },
}

impl ScenarioSpec {
    /// The stable machine name (golden-corpus file stem, CLI filter,
    /// query-parameter value).
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioSpec::CommuterTown { .. } => "commuter_town",
            ScenarioSpec::DenseDowntown { .. } => "dense_downtown",
            ScenarioSpec::HubRush { .. } => "hub_rush",
            ScenarioSpec::CrossingPaths => "crossing_paths",
            ScenarioSpec::RandomWalkers { .. } => "random_walkers",
            ScenarioSpec::ServingDay { .. } => "serving_day",
        }
    }

    /// Generates the workload (dataset + ground truth) under `seed`.
    pub fn generate(&self, seed: u64) -> SynthOutput {
        match *self {
            ScenarioSpec::CommuterTown { users, days } => {
                scenarios::commuter_town(users, days, seed)
            }
            ScenarioSpec::DenseDowntown { users, days } => {
                scenarios::dense_downtown(users, days, seed)
            }
            ScenarioSpec::HubRush {
                users,
                via_hub_fraction,
            } => scenarios::hub_rush(users, via_hub_fraction, seed),
            ScenarioSpec::CrossingPaths => scenarios::crossing_paths(seed),
            ScenarioSpec::RandomWalkers { users, trips } => {
                scenarios::random_walkers(users, trips, seed)
            }
            ScenarioSpec::ServingDay { users } => scenarios::serving_day(users, seed),
        }
    }
}

/// One mechanism configuration of the matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MechanismSpec {
    /// Raw publication (the baseline every attack should win against).
    Identity,
    /// Per-user random pseudonyms, locations untouched.
    Pseudonymize,
    /// Promesse speed smoothing at `alpha_m` meters.
    Promesse {
        /// Spatial smoothing interval α, meters.
        alpha_m: f64,
    },
    /// Planar-Laplace geo-indistinguishability at `epsilon` (1/m).
    GeoInd {
        /// Privacy parameter ε, per meter.
        epsilon: f64,
    },
    /// Spatial generalization to a `cell_m`-meter grid.
    Grid {
        /// Cell side, meters.
        cell_m: f64,
    },
    /// Mix-zone identifier swapping with default zone parameters.
    MixZones,
    /// (k, δ)-anonymity by trajectory clustering.
    KDelta {
        /// Minimum cluster size k.
        k: usize,
        /// Spatial tolerance δ, meters.
        delta_m: f64,
    },
    /// The paper's full pipeline: smoothing then swapping.
    Pipeline {
        /// Promesse α, meters.
        alpha_m: f64,
    },
}

impl MechanismSpec {
    /// The stable machine id (golden-corpus key, CLI filter,
    /// query-parameter value). Parameters are part of the id, so an
    /// α-sweep yields distinct cells.
    pub fn id(&self) -> String {
        match self {
            MechanismSpec::Identity => "raw".to_owned(),
            MechanismSpec::Pseudonymize => "pseudonymize".to_owned(),
            MechanismSpec::Promesse { alpha_m } => format!("promesse_a{alpha_m}"),
            MechanismSpec::GeoInd { epsilon } => format!("geoind_e{epsilon}"),
            MechanismSpec::Grid { cell_m } => format!("grid_c{cell_m}"),
            MechanismSpec::MixZones => "mixzones".to_owned(),
            MechanismSpec::KDelta { k, delta_m } => format!("kdelta_k{k}_d{delta_m}"),
            MechanismSpec::Pipeline { alpha_m } => format!("pipeline_a{alpha_m}"),
        }
    }

    /// Builds the concrete mechanism.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters — plans are authored in code (or
    /// validated at the CLI/service boundary), so a bad parameter is a
    /// programming error, not runtime input.
    pub fn build(&self) -> Box<dyn Mechanism> {
        match *self {
            MechanismSpec::Identity => Box::new(Identity),
            MechanismSpec::Pseudonymize => Box::new(Pseudonymize::new()),
            MechanismSpec::Promesse { alpha_m } => {
                Box::new(Promesse::new(alpha_m).expect("valid alpha"))
            }
            MechanismSpec::GeoInd { epsilon } => Box::new(GeoInd::new(epsilon).expect("valid ε")),
            MechanismSpec::Grid { cell_m } => {
                Box::new(GridGeneralization::new(cell_m).expect("valid cell"))
            }
            MechanismSpec::MixZones => {
                Box::new(MixZones::new(MixZoneConfig::default()).expect("valid default config"))
            }
            MechanismSpec::KDelta { k, delta_m } => {
                Box::new(KDelta::new(k, delta_m).expect("valid (k, δ)"))
            }
            MechanismSpec::Pipeline { alpha_m } => {
                Box::new(Pipeline::new(alpha_m, MixZoneConfig::default()).expect("valid pipeline"))
            }
        }
    }

    /// Expected per-point location error, meters — what a
    /// Kerckhoffs-aware adversary tunes for
    /// (`PoiAttack::tuned_for_noise`). Zero for mechanisms that do not
    /// perturb locations.
    pub fn expected_noise_m(&self) -> f64 {
        match *self {
            // Planar Laplace: E[‖noise‖] = 2/ε.
            MechanismSpec::GeoInd { epsilon } => 2.0 / epsilon,
            // Snapping to a c-meter grid moves a point at most c/√2.
            MechanismSpec::Grid { cell_m } => cell_m / 2.0,
            MechanismSpec::KDelta { delta_m, .. } => delta_m / 2.0,
            _ => 0.0,
        }
    }
}

/// The declarative evaluation matrix: scenarios × mechanisms × seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPlan {
    /// Preset name recorded in the report (`smoke`, `full`, `custom`).
    pub name: String,
    /// The scenario axis.
    pub scenarios: Vec<ScenarioSpec>,
    /// The mechanism axis.
    pub mechanisms: Vec<MechanismSpec>,
    /// The seed axis (each seed re-generates every scenario and re-keys
    /// every cell RNG).
    pub seeds: Vec<u64>,
}

impl EvalPlan {
    /// The CI-scale preset: every scenario family and the whole
    /// mechanism matrix (including a Promesse α-sweep and a GeoInd
    /// ε-sweep) on workloads small enough for a debug-build test run.
    /// This is the plan the golden conformance corpus pins.
    pub fn smoke() -> EvalPlan {
        EvalPlan {
            name: "smoke".to_owned(),
            scenarios: vec![
                ScenarioSpec::CommuterTown { users: 4, days: 2 },
                ScenarioSpec::DenseDowntown { users: 4, days: 1 },
                ScenarioSpec::HubRush {
                    users: 8,
                    via_hub_fraction: 0.5,
                },
                ScenarioSpec::CrossingPaths,
                ScenarioSpec::RandomWalkers { users: 3, trips: 3 },
                ScenarioSpec::ServingDay { users: 3 },
            ],
            mechanisms: Self::mechanism_matrix(),
            seeds: vec![42],
        }
    }

    /// The full-scale preset: same matrix on the workload sizes the
    /// recorded experiment numbers use, two seeds.
    pub fn full() -> EvalPlan {
        EvalPlan {
            name: "full".to_owned(),
            scenarios: vec![
                ScenarioSpec::CommuterTown { users: 20, days: 4 },
                ScenarioSpec::DenseDowntown { users: 20, days: 2 },
                ScenarioSpec::HubRush {
                    users: 40,
                    via_hub_fraction: 0.5,
                },
                ScenarioSpec::CrossingPaths,
                ScenarioSpec::RandomWalkers {
                    users: 10,
                    trips: 6,
                },
                ScenarioSpec::ServingDay { users: 50 },
            ],
            mechanisms: Self::mechanism_matrix(),
            seeds: vec![42, 43],
        }
    }

    /// The shared mechanism axis of both presets.
    fn mechanism_matrix() -> Vec<MechanismSpec> {
        vec![
            MechanismSpec::Identity,
            MechanismSpec::Pseudonymize,
            MechanismSpec::Promesse { alpha_m: 50.0 },
            MechanismSpec::Promesse { alpha_m: 100.0 },
            MechanismSpec::Promesse { alpha_m: 200.0 },
            MechanismSpec::GeoInd { epsilon: 0.1 },
            MechanismSpec::GeoInd { epsilon: 0.01 },
            MechanismSpec::Grid { cell_m: 250.0 },
            MechanismSpec::MixZones,
            MechanismSpec::KDelta {
                k: 2,
                delta_m: 500.0,
            },
            MechanismSpec::Pipeline { alpha_m: 100.0 },
        ]
    }

    /// Restricts the plan to the named scenario (exact match on
    /// [`ScenarioSpec::name`]); `None` if the name is unknown.
    pub fn with_scenario(mut self, name: &str) -> Option<EvalPlan> {
        self.scenarios.retain(|s| s.name() == name);
        if self.scenarios.is_empty() {
            None
        } else {
            Some(self)
        }
    }

    /// Restricts the plan to the mechanism with the given id (exact
    /// match on [`MechanismSpec::id`]); `None` if the id is unknown.
    pub fn with_mechanism(mut self, id: &str) -> Option<EvalPlan> {
        self.mechanisms.retain(|m| m.id() == id);
        if self.mechanisms.is_empty() {
            None
        } else {
            Some(self)
        }
    }

    /// Replaces the seed axis with a single seed.
    pub fn with_seed(mut self, seed: u64) -> EvalPlan {
        self.seeds = vec![seed];
        self
    }

    /// Number of cells the runner will produce.
    pub fn cell_count(&self) -> usize {
        self.scenarios.len() * self.mechanisms.len() * self.seeds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_plan_covers_the_full_matrix() {
        let plan = EvalPlan::smoke();
        assert_eq!(plan.scenarios.len(), 6);
        assert_eq!(plan.mechanisms.len(), 11);
        assert_eq!(plan.cell_count(), 66);
        // The sweeps are present.
        let ids: Vec<String> = plan.mechanisms.iter().map(MechanismSpec::id).collect();
        assert!(ids.contains(&"promesse_a50".to_owned()));
        assert!(ids.contains(&"promesse_a200".to_owned()));
        assert!(ids.contains(&"geoind_e0.1".to_owned()));
        assert!(ids.contains(&"geoind_e0.01".to_owned()));
    }

    #[test]
    fn mechanism_ids_are_unique() {
        let plan = EvalPlan::smoke();
        let mut ids: Vec<String> = plan.mechanisms.iter().map(MechanismSpec::id).collect();
        ids.sort();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn every_spec_builds() {
        for spec in EvalPlan::smoke().mechanisms {
            let mechanism = spec.build();
            assert!(!mechanism.name().is_empty(), "{}", spec.id());
        }
    }

    #[test]
    fn filters_narrow_or_reject() {
        let plan = EvalPlan::smoke().with_scenario("crossing_paths").unwrap();
        assert_eq!(plan.scenarios.len(), 1);
        assert!(EvalPlan::smoke().with_scenario("atlantis").is_none());
        let plan = EvalPlan::smoke().with_mechanism("promesse_a100").unwrap();
        assert_eq!(plan.mechanisms.len(), 1);
        assert!(EvalPlan::smoke().with_mechanism("nope").is_none());
        assert_eq!(EvalPlan::smoke().with_seed(7).seeds, vec![7]);
    }

    #[test]
    fn noise_tuning_matches_the_paper_settings() {
        let spec = MechanismSpec::GeoInd { epsilon: 0.01 };
        assert!((spec.expected_noise_m() - 200.0).abs() < 1e-9);
        assert_eq!(MechanismSpec::Identity.expected_noise_m(), 0.0);
    }

    #[test]
    fn scenarios_generate_deterministically() {
        for spec in EvalPlan::smoke().scenarios {
            let a = spec.generate(9);
            let b = spec.generate(9);
            assert_eq!(a.dataset, b.dataset, "{}", spec.name());
            assert!(!a.dataset.is_empty(), "{}", spec.name());
        }
    }
}
