//! The evaluation-matrix CLI: run the mechanism × scenario × attack
//! grid, print or save the JSON report, and maintain the golden
//! conformance corpus. Run with `--help` for usage.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use mobipriv_eval::{evaluate_with, EvalPlan, EvalReport};

const USAGE: &str = "\
usage: mobipriv-eval [--smoke|--full] [--scenario NAME] [--mechanism ID]
                     [--seed N] [--threads N] [--timings] [--profile]
                     [--out FILE]
                     [--bless | --check] [--golden DIR] [--bench-out FILE]

Runs the mechanism × scenario × attack × utility-metric matrix on the
deterministic engine and emits a schema-versioned JSON report. The
report is bit-identical across runs and thread counts.

options:
  --smoke           the CI-scale preset (default; the golden corpus
                    pins this plan)
  --full            the experiment-scale preset (minutes, release build)
  --scenario NAME   restrict to one scenario (commuter_town,
                    dense_downtown, hub_rush, crossing_paths,
                    random_walkers, serving_day)
  --mechanism ID    restrict to one mechanism id (raw, pseudonymize,
                    promesse_a100, geoind_e0.01, grid_c250, mixzones,
                    kdelta_k2_d500, pipeline_a100, ...)
  --seed N          replace the plan's seed axis with the single seed N
  --threads N       pin the cell fan-out to N workers (output is
                    identical for any N)
  --timings         include per-cell wall_ms in the report output so
                    the matrix shows where the time goes (timed output
                    is not byte-stable across runs; --bless/--check
                    always use the canonical timing-free form)
  --profile         after the run, print per-stage wall-time tables
                    (build/protect/attacks/metrics and per-mechanism
                    engine timings) to stderr; the report bytes are
                    unchanged
  --out FILE        write the report to FILE instead of stdout
  --bless           (re)write the golden corpus, one file per scenario
                    (smoke preset only; composes with --scenario, not
                    with --mechanism/--seed/--full)
  --check           re-run the matrix and fail (exit 1) on any
                    divergence from the golden corpus (same
                    composition rules as --bless)
  --bench-out FILE  also write wall-clock throughput figures (cells,
                    seconds, cells/s) as JSON, e.g. BENCH_eval.json
  --golden DIR      corpus directory for --bless/--check
                    (default: <repo>/tests/golden)
  -h, --help        print this help
";

/// The in-repo corpus location, resolved from this crate's manifest so
/// `--bless`/`--check` work from any working directory.
fn default_golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

struct Args {
    plan: EvalPlan,
    threads: Option<usize>,
    timings: bool,
    profile: bool,
    out: Option<PathBuf>,
    bless: bool,
    check: bool,
    golden: PathBuf,
    bench_out: Option<PathBuf>,
}

fn parse_args() -> Result<Option<Args>, String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut plan = EvalPlan::smoke();
    let mut scenario = None;
    let mut mechanism = None;
    let mut seed = None;
    let mut threads = None;
    let mut timings = false;
    let mut profile = false;
    let mut out = None;
    let mut bless = false;
    let mut check = false;
    let mut golden = default_golden_dir();
    let mut bench_out = None;
    let mut iter = raw.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--smoke" => plan = EvalPlan::smoke(),
            "--full" => plan = EvalPlan::full(),
            "--scenario" => scenario = Some(value_of("--scenario")?),
            "--mechanism" => mechanism = Some(value_of("--mechanism")?),
            "--seed" => {
                let v = value_of("--seed")?;
                seed = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--seed expects an integer, got `{v}`"))?,
                );
            }
            "--threads" => {
                let v = value_of("--threads")?;
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => threads = Some(n),
                    _ => return Err(format!("--threads expects a positive integer, got `{v}`")),
                }
            }
            "--timings" => timings = true,
            "--profile" => profile = true,
            "--out" => out = Some(PathBuf::from(value_of("--out")?)),
            "--bless" => bless = true,
            "--check" => check = true,
            "--golden" => golden = PathBuf::from(value_of("--golden")?),
            "--bench-out" => bench_out = Some(PathBuf::from(value_of("--bench-out")?)),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if bless && check {
        return Err("--bless and --check are mutually exclusive".to_owned());
    }
    // The golden corpus is one file per scenario, always covering the
    // smoke preset's full mechanism × seed matrix. A mechanism/seed
    // filter (or the full preset) would make --check diff a partial
    // slice against a complete file, and --bless would overwrite
    // complete files with partial ones — reject the combinations
    // instead of corrupting the corpus. (--scenario is fine: it just
    // restricts which whole files are touched.)
    if (bless || check) && (mechanism.is_some() || seed.is_some() || plan.name != "smoke") {
        let op = if bless { "--bless" } else { "--check" };
        return Err(format!(
            "{op} operates on whole per-scenario golden files of the smoke preset; \
             it cannot be combined with --mechanism, --seed or --full \
             (narrow with --scenario instead)"
        ));
    }
    if let Some(name) = scenario {
        plan = plan
            .with_scenario(&name)
            .ok_or_else(|| format!("unknown scenario `{name}`"))?;
    }
    if let Some(id) = mechanism {
        plan = plan
            .with_mechanism(&id)
            .ok_or_else(|| format!("unknown mechanism id `{id}`"))?;
    }
    if let Some(s) = seed {
        plan = plan.with_seed(s);
    }
    Ok(Some(Args {
        plan,
        threads,
        timings,
        profile,
        out,
        bless,
        check,
        golden,
        bench_out,
    }))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let report = evaluate_with(&args.plan, args.threads);
    let elapsed = started.elapsed();

    if args.profile {
        let registry = mobipriv_obs::global();
        for family in [
            "mobipriv_eval_stage_seconds",
            "mobipriv_engine_protect_seconds",
        ] {
            let table = mobipriv_obs::profile::stage_table(registry, family);
            if !table.is_empty() {
                eprintln!("{family}:\n{table}");
            }
        }
    }

    if let Some(path) = &args.bench_out {
        let seconds = elapsed.as_secs_f64();
        let bench = format!(
            "{{\"bench\":\"eval\",\"plan\":\"{}\",\"cells\":{},\"seconds\":{seconds},\
             \"cells_per_s\":{},\"threads\":{}}}\n",
            report.plan,
            report.cells.len(),
            report.cells.len() as f64 / seconds.max(1e-9),
            args.threads.map_or("null".to_owned(), |n| n.to_string()),
        );
        if let Err(e) = std::fs::write(path, bench) {
            eprintln!("writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "bench: {} cells in {seconds:.2}s -> {}",
            report.cells.len(),
            path.display()
        );
    }

    if args.bless {
        return bless(&report, &args.golden);
    }
    if args.check {
        return check(&report, &args.golden);
    }

    let text = if args.timings {
        report.to_json_timed()
    } else {
        report.to_json()
    };
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("report: {} cells -> {}", report.cells.len(), path.display());
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            if stdout.write_all(text.as_bytes()).is_err() {
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Writes one golden file per scenario present in the report.
fn bless(report: &EvalReport, golden: &Path) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(golden) {
        eprintln!("creating {}: {e}", golden.display());
        return ExitCode::FAILURE;
    }
    for scenario in report.scenarios() {
        let path = golden.join(format!("{scenario}.json"));
        let slice = report.scenario_slice(&scenario);
        if let Err(e) = std::fs::write(&path, slice.to_json()) {
            eprintln!("writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("blessed {} ({} cells)", path.display(), slice.cells.len());
    }
    ExitCode::SUCCESS
}

/// Compares the fresh report against every golden file.
fn check(report: &EvalReport, golden: &Path) -> ExitCode {
    let mut problems = Vec::new();
    let mut checked = 0usize;
    for scenario in report.scenarios() {
        let path = golden.join(format!("{scenario}.json"));
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                problems.push(format!("reading {}: {e} (run --bless?)", path.display()));
                continue;
            }
        };
        match EvalReport::from_json(&text) {
            Ok(reference) => {
                problems.extend(reference.diff(&report.scenario_slice(&scenario)));
                checked += reference.cells.len();
            }
            Err(e) => problems.push(format!("parsing {}: {e}", path.display())),
        }
    }
    if problems.is_empty() {
        println!(
            "conformance OK: {checked} golden cells match (plan `{}`)",
            report.plan
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("conformance FAILED ({} problems):", problems.len());
        for p in &problems {
            eprintln!("  {p}");
        }
        eprintln!(
            "if this change is intentional, regenerate the corpus with \
             `cargo run --release -p mobipriv-eval --bin mobipriv-eval -- --bless`"
        );
        ExitCode::FAILURE
    }
}
