//! Property-based tests on rendezvous (highest-random-weight) shard
//! placement: ownership is a pure function of the *set* of shard names
//! and the key — stable under listing order, roughly balanced across
//! shards, and minimally disturbed by membership changes (removing a
//! shard remaps only the keys it owned; adding one steals only the
//! keys it now wins).

use std::collections::HashSet;

use proptest::prelude::*;

use mobipriv_service::{rendezvous_owner, rendezvous_rank};

/// Unique shard names in `"host:port"` shape, derived from generated
/// integers (the vendored proptest has no string strategies).
fn arb_shards(min: usize) -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(any::<u16>(), min..9).prop_map(move |raw| {
        let mut seen = HashSet::new();
        let mut shards: Vec<String> = raw
            .into_iter()
            .map(|n| format!("10.0.{}.{}:8080", n >> 8, n & 0xff))
            .filter(|name| seen.insert(name.clone()))
            .collect();
        // Deduplication may dip under `min`; pad from a disjoint range.
        let mut pad = 0u32;
        while shards.len() < min {
            let name = format!("172.16.0.{pad}:8080");
            if seen.insert(name.clone()) {
                shards.push(name);
            }
            pad += 1;
        }
        shards
    })
}

fn arb_keys(size: std::ops::Range<usize>) -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(any::<u64>(), size)
        .prop_map(|raw| raw.into_iter().map(|n| format!("{n:016x}")).collect())
}

fn owner_name(shards: &[String], key: &str) -> String {
    shards[rendezvous_owner(shards, key).expect("nonempty shard list")].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Ownership depends on the shard *set*, not the listing order:
    /// reversing or rotating the `--route` list must not move a key.
    #[test]
    fn owner_is_stable_under_shard_reordering(
        shards in arb_shards(1),
        keys in arb_keys(1..16),
        rotate in any::<usize>(),
    ) {
        let mut reversed = shards.clone();
        reversed.reverse();
        let mut rotated = shards.clone();
        rotated.rotate_left(rotate % shards.len().max(1));
        for key in &keys {
            let owner = owner_name(&shards, key);
            prop_assert_eq!(&owner, &owner_name(&reversed, key), "reversal moved {}", key);
            prop_assert_eq!(&owner, &owner_name(&rotated, key), "rotation moved {}", key);
        }
    }

    /// Removing one shard remaps exactly the keys it owned — every
    /// other key keeps its owner (the minimal-disruption property that
    /// makes scale-in cheap), and the orphaned keys land on their
    /// second-ranked shard.
    #[test]
    fn removing_a_shard_remaps_only_its_own_keys(
        shards in arb_shards(2),
        keys in arb_keys(1..32),
        victim in any::<usize>(),
    ) {
        let victim = victim % shards.len();
        let survivors: Vec<String> = shards
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, s)| s.clone())
            .collect();
        for key in &keys {
            let before = owner_name(&shards, key);
            let after = owner_name(&survivors, key);
            if before == shards[victim] {
                let rank = rendezvous_rank(&shards, key);
                prop_assert_eq!(
                    &after, &shards[rank[1]],
                    "orphaned {} skipped its second-ranked shard", key
                );
            } else {
                prop_assert_eq!(&before, &after, "removal of an unrelated shard moved {}", key);
            }
        }
    }

    /// Adding a shard steals only the keys it wins outright: every key
    /// either keeps its owner or moves to the newcomer — never to a
    /// third shard.
    #[test]
    fn adding_a_shard_only_steals_keys_it_wins(
        shards in arb_shards(1),
        keys in arb_keys(1..32),
    ) {
        let mut grown = shards.clone();
        grown.push("192.168.77.1:8080".to_owned());
        for key in &keys {
            let before = owner_name(&shards, key);
            let after = owner_name(&grown, key);
            prop_assert!(
                after == before || after == grown[grown.len() - 1],
                "{} moved to a third shard: {} -> {}", key, before, after
            );
        }
    }

    /// Placement spreads keys across all shards without gross skew
    /// (bounds are loose — 256 keys over 4 shards expect 64 each; a
    /// shard outside 16..=160 means the hash stopped mixing).
    #[test]
    fn placement_is_roughly_balanced_across_four_shards(keys in arb_keys(256..257)) {
        let shards: Vec<String> = (1..=4).map(|i| format!("10.1.0.{i}:8080")).collect();
        let mut counts = [0usize; 4];
        for key in &keys {
            counts[rendezvous_owner(&shards, key).unwrap()] += 1;
        }
        for (index, count) in counts.iter().enumerate() {
            prop_assert!(
                (16..=160).contains(count),
                "shard {} owns {} of 256 keys: {:?}", index, count, counts
            );
        }
    }

    /// The failover order is a permutation of all shards headed by the
    /// owner — so walking it visits every shard exactly once.
    #[test]
    fn rank_is_a_permutation_headed_by_the_owner(
        shards in arb_shards(1),
        keys in arb_keys(1..8),
    ) {
        for key in &keys {
            let rank = rendezvous_rank(&shards, key);
            prop_assert_eq!(rank.len(), shards.len());
            let unique: HashSet<usize> = rank.iter().copied().collect();
            prop_assert_eq!(unique.len(), shards.len(), "rank repeats a shard for {}", key);
            prop_assert_eq!(
                rank[0],
                rendezvous_owner(&shards, key).unwrap(),
                "rank head disagrees with the owner for {}", key
            );
        }
    }
}
