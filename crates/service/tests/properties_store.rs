//! Property-based tests on the persistence layer's journal: encode ∘
//! decode is a byte fixed point, arbitrary tail truncation recovers
//! exactly the longest valid prefix (never panics, never serves a
//! partial record), and a single flipped bit is detected at the
//! precise frame offset — plus the blob-side corollary over a real
//! store directory: any single-bit blob corruption is quarantined.

use proptest::prelude::*;

use mobipriv_geo::LatLng;
use mobipriv_model::digest::{dataset_digest, digest_hex};
use mobipriv_model::{Dataset, Fix, Timestamp, Trace, UserId};
use mobipriv_service::cache::CachedResult;
use mobipriv_service::store::journal::{self, Record, MAGIC};
use mobipriv_service::Store;

/// Printable-ASCII strings (journal payloads carry digests, canonical
/// keys and header values — all ASCII in practice, but decode must
/// hold for anything).
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(32u8..127, 0..48)
        .prop_map(|bytes| bytes.into_iter().map(|b| b as char).collect())
}

fn arb_digest() -> impl Strategy<Value = String> {
    proptest::prelude::any::<u64>().prop_map(|n| format!("{n:016x}"))
}

fn arb_headers() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec((arb_text(), arb_text()), 0..6)
}

fn arb_record() -> impl Strategy<Value = Record> {
    prop_oneof![
        (arb_digest(), arb_digest()).prop_map(|(digest, blob_digest)| {
            Record::DatasetRegistered {
                digest,
                blob_digest,
            }
        }),
        (arb_digest(), arb_text())
            .prop_map(|(id, canonical)| Record::JobSubmitted { id, canonical }),
        (
            arb_text(),
            arb_text(),
            arb_headers(),
            arb_digest(),
            any::<u64>()
        )
            .prop_map(
                |(canonical, content_type, headers, body_digest, body_len)| Record::JobCompleted {
                    canonical,
                    content_type,
                    headers,
                    body_digest,
                    body_len,
                }
            ),
        arb_digest().prop_map(|digest| Record::DatasetEvicted { digest }),
        arb_text().prop_map(|canonical| Record::ResultEvicted { canonical }),
    ]
}

fn arb_journal() -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec(arb_record(), 0..12)
}

fn image_of(records: &[Record]) -> (Vec<u8>, Vec<u64>) {
    let mut image = MAGIC.to_vec();
    let mut frame_starts = Vec::new();
    for record in records {
        frame_starts.push(image.len() as u64);
        image.extend_from_slice(&journal::encode(record));
    }
    (image, frame_starts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// encode ∘ decode is the identity, and re-encoding the decoded
    /// record reproduces the payload byte for byte (the fixed point
    /// that makes journal replay → re-append idempotent).
    #[test]
    fn record_codec_is_a_byte_fixed_point(record in arb_record()) {
        let payload = journal::encode_payload(&record);
        let decoded = journal::decode_payload(&payload)
            .expect("every encoded record decodes");
        prop_assert_eq!(&decoded, &record);
        prop_assert_eq!(journal::encode_payload(&decoded), payload);
        // Framed form: replaying a one-record journal yields it back.
        let (image, _) = image_of(std::slice::from_ref(&record));
        let replay = journal::replay(&image);
        prop_assert_eq!(replay.records.len(), 1);
        prop_assert_eq!(&replay.records[0], &record);
        prop_assert_eq!(replay.corrupt_at, None);
    }

    /// Cutting the journal anywhere recovers exactly the records whose
    /// frames fit in the kept prefix — never a panic, never a partial
    /// record, and the reported valid length is the last frame
    /// boundary at or before the cut.
    #[test]
    fn truncation_recovers_the_longest_valid_prefix(
        records in arb_journal(),
        cut_seed in any::<u64>(),
    ) {
        let (image, frame_starts) = image_of(&records);
        let cut = (cut_seed % (image.len() as u64 + 1)) as usize;
        let replay = journal::replay(&image[..cut]);
        if cut < MAGIC.len() {
            prop_assert_eq!(replay.records.len(), 0);
            prop_assert_eq!(replay.valid_len, 0);
            return Ok(());
        }
        let whole = frame_starts
            .iter()
            .enumerate()
            .filter(|&(idx, _)| {
                let end = frame_starts
                    .get(idx + 1)
                    .copied()
                    .unwrap_or(image.len() as u64);
                end <= cut as u64
            })
            .count();
        prop_assert_eq!(replay.records.len(), whole, "cut={}", cut);
        prop_assert_eq!(&replay.records[..], &records[..whole]);
        let expected_valid = frame_starts
            .get(whole)
            .copied()
            .unwrap_or(image.len() as u64)
            .min(cut as u64);
        prop_assert_eq!(replay.valid_len, expected_valid);
        // A clean cut at a frame boundary is not damage; anything else is.
        prop_assert_eq!(replay.corrupt_at.is_some(), expected_valid != cut as u64);
    }

    /// Flipping any single bit of any frame is detected, the walk
    /// stops at exactly that frame's offset, and every earlier record
    /// survives. (The checksum, length bound and strict decoder make a
    /// false accept a ~2^-64 event.)
    #[test]
    fn single_bit_corruption_is_detected_at_the_frame(
        records in proptest::collection::vec(arb_record(), 1..10),
        victim_seed in any::<u64>(),
        bit_seed in any::<u64>(),
    ) {
        let (mut image, frame_starts) = image_of(&records);
        let victim = (victim_seed % records.len() as u64) as usize;
        let start = frame_starts[victim] as usize;
        let end = frame_starts
            .get(victim + 1)
            .map(|&s| s as usize)
            .unwrap_or(image.len());
        let bit = (bit_seed % ((end - start) as u64 * 8)) as usize;
        image[start + bit / 8] ^= 1 << (bit % 8);
        let replay = journal::replay(&image);
        prop_assert_eq!(&replay.records[..], &records[..victim]);
        prop_assert_eq!(replay.corrupt_at, Some(start as u64), "bit {}", bit);
        prop_assert_eq!(replay.valid_len, start as u64);
    }
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mobipriv-props-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blob-side single-bit corruption: whichever byte/bit of either
    /// blob flips, recovery quarantines exactly that blob (re-hash
    /// mismatch), keeps serving the clean one, and never panics.
    #[test]
    fn single_bit_blob_corruption_is_quarantined(
        byte_seed in any::<u64>(),
        bit in 0u8..8,
        corrupt_dataset in proptest::prelude::any::<bool>(),
    ) {
        let root = scratch(&format!("blob-{byte_seed}-{bit}-{corrupt_dataset}"));
        let dataset = Dataset::from_traces(vec![Trace::new(
            UserId::new(9),
            vec![
                Fix::new(LatLng::new(45.1, 4.9).unwrap(), Timestamp::new(0)),
                Fix::new(LatLng::new(45.2, 4.8).unwrap(), Timestamp::new(30)),
            ],
        )
        .unwrap()]);
        let digest = dataset_digest(&dataset);
        let body = b"result-body-bytes".to_vec();
        let body_digest = digest_hex(&body);
        {
            let (store, _) = Store::open(&root).expect("open");
            store.put_dataset(&digest, &dataset).expect("put dataset");
            store
                .put_result(&CachedResult {
                    canonical: "canon|prop".to_owned(),
                    content_type: "text/csv",
                    headers: vec![("x-mobipriv-seed", "1".to_owned())],
                    body: body.clone(),
                })
                .expect("put result");
        }
        // Blob files are namespaced by kind: `d_` datasets, `r_` results.
        let victim = if corrupt_dataset {
            format!("d_{digest}")
        } else {
            format!("r_{body_digest}")
        };
        let path = root.join("blobs").join(&victim);
        let mut bytes = std::fs::read(&path).expect("blob exists");
        let at = (byte_seed % bytes.len() as u64) as usize;
        bytes[at] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("rewrite blob");
        let (_, recovered) = Store::open(&root).expect("recovery never fails");
        prop_assert_eq!(recovered.report.quarantined, 1);
        prop_assert!(root.join("quarantine").join(&victim).exists());
        prop_assert!(!path.exists(), "corrupt blob no longer servable");
        if corrupt_dataset {
            prop_assert_eq!(recovered.datasets.len(), 0);
            prop_assert_eq!(recovered.results.len(), 1);
            prop_assert_eq!(&recovered.results[0].body, &body);
        } else {
            prop_assert_eq!(recovered.results.len(), 0);
            prop_assert_eq!(recovered.datasets.len(), 1);
            prop_assert_eq!(dataset_digest(&recovered.datasets[0]), digest.clone());
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
