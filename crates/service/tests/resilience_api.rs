//! Failure-domain integration tests over real sockets: compute
//! deadlines through the single-flight cache, circuit-breaker
//! degradation and recovery, slow-loris client timeouts, and the retry
//! quarantine's attempt history — the service-level contracts behind
//! `DESIGN.md` §14.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use mobipriv_model::write_csv;
use mobipriv_service::client::json_str_field;
use mobipriv_service::{backoff_ms, ChaosConfig, Server, ServerConfig, ServerHandle};
use mobipriv_synth::scenarios;

fn start(configure: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut config = ServerConfig::default();
    configure(&mut config);
    Server::bind(config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

/// Sends raw bytes, returns (status, lowercased headers, body).
fn exchange(addr: SocketAddr, request: &[u8]) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> (u16, HashMap<String, String>, Vec<u8>) {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head/body separator");
    let head = std::str::from_utf8(&raw[..split]).expect("ASCII head");
    let body = raw[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    (status, headers, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, HashMap<String, String>, Vec<u8>) {
    exchange(
        addr,
        format!("GET {target} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, target: &str, body: &[u8]) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut request = format!(
        "POST {target} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(body);
    exchange(addr, &request)
}

fn workload_csv() -> Vec<u8> {
    let workload = scenarios::serving_day(60, 7);
    let mut out = Vec::new();
    write_csv(&workload.dataset, &mut out).unwrap();
    out
}

/// The value of a `/metrics` counter/gauge without labels.
fn metric(addr: SocketAddr, name: &str) -> Option<f64> {
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = std::str::from_utf8(&body).unwrap();
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn backoff_is_deterministic_monotone_and_bounded() {
    // Property sweep across keys, bases and caps — no randomness, so an
    // exhaustive grid stands in for proptest.
    for key in ["a", "v1|anonymize|abc|promesse|seed=1", "x/y/z", ""] {
        for (base, cap) in [(1, 4), (25, 1_000), (100, 100), (50, 10), (0, 0)] {
            let mut previous = 0;
            for attempt in 0..24 {
                let a = backoff_ms(key, attempt, base, cap);
                let b = backoff_ms(key, attempt, base, cap);
                assert_eq!(a, b, "same inputs must give the same delay");
                assert!(
                    a >= previous,
                    "schedule must be monotone: {previous} -> {a}"
                );
                assert!(
                    a <= cap.max(base).max(1),
                    "delay {a} exceeds cap {cap} (base {base})"
                );
                previous = a;
            }
        }
    }
    // Distinct keys de-synchronize (jitter differs for at least one
    // attempt across a realistic base).
    let a: Vec<u64> = (0..8)
        .map(|n| backoff_ms("key-a", n, 100, 10_000))
        .collect();
    let b: Vec<u64> = (0..8)
        .map(|n| backoff_ms("key-b", n, 100, 10_000))
        .collect();
    assert_ne!(a, b, "jitter must separate distinct keys");
}

#[test]
fn deadline_exceeded_flight_fails_followers_identically_then_recomputes() {
    let server = start(|_| {});
    let addr = server.addr();
    let body = workload_csv();
    let target = "/v1/anonymize?mechanism=promesse&seed=11&timeout_ms=0";

    // A zero compute budget trips deterministically. Race several
    // clients at the same key: whoever leads fails the flight, everyone
    // — leader and followers alike — must see the same 504 bytes.
    let mut clients = Vec::new();
    for _ in 0..4 {
        let body = body.clone();
        clients.push(std::thread::spawn(move || post(addr, target, &body)));
    }
    let responses: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    for (status, _, body) in &responses {
        assert_eq!(*status, 504, "zero budget must answer 504");
        assert_eq!(
            body, &responses[0].2,
            "every client sees the same error bytes"
        );
    }
    assert!(metric(addr, "mobipriv_deadline_exceeded_total").unwrap_or(0.0) >= 1.0);

    // The failed flight must not poison the key: the same computation
    // without the budget recomputes cleanly (miss, then hit).
    let plain = "/v1/anonymize?mechanism=promesse&seed=11";
    let (status, headers, first) = post(addr, plain, &body);
    assert_eq!(status, 200, "key must be immediately reusable");
    assert_eq!(
        headers.get("x-mobipriv-cache").map(String::as_str),
        Some("miss")
    );
    let (status, headers, second) = post(addr, plain, &body);
    assert_eq!(status, 200);
    assert_eq!(
        headers.get("x-mobipriv-cache").map(String::as_str),
        Some("hit")
    );
    assert_eq!(first, second, "cached bytes match the computed bytes");
    server.shutdown();
}

#[test]
fn breaker_opens_serves_hits_while_degraded_and_recovers() {
    let server = start(|config| {
        config.resilience.breaker_failure_threshold = 2;
        config.resilience.breaker_open = Duration::from_millis(300);
    });
    let addr = server.addr();
    let body = workload_csv();

    // Prewarm one key while the breaker is closed.
    let warm = "/v1/anonymize?mechanism=promesse&seed=1";
    let (status, _, warm_bytes) = post(addr, warm, &body);
    assert_eq!(status, 200);
    let (_, _, health) = get(addr, "/healthz");
    assert_eq!(health, b"ready\n");

    // Two consecutive compute failures (tripped deadlines) open it.
    for seed in [2, 3] {
        let target = format!("/v1/anonymize?mechanism=promesse&seed={seed}&timeout_ms=0");
        let (status, _, _) = post(addr, &target, &body);
        assert_eq!(status, 504);
    }
    assert_eq!(
        metric(addr, "mobipriv_breaker_state"),
        Some(2.0),
        "gauge reads open (0=closed, 1=half-open, 2=open)"
    );

    // Degraded: cold computes shed with Retry-After, cache hits and the
    // health/metrics surfaces keep serving.
    let (status, headers, _) = post(addr, "/v1/anonymize?mechanism=promesse&seed=4", &body);
    assert_eq!(status, 503, "cold compute must shed while open");
    assert!(
        headers.contains_key("retry-after"),
        "shed responses advertise when to come back"
    );
    let (status, headers, hit_bytes) = post(addr, warm, &body);
    assert_eq!(status, 200, "cache hits keep serving while degraded");
    assert_eq!(
        headers.get("x-mobipriv-cache").map(String::as_str),
        Some("hit")
    );
    assert_eq!(hit_bytes, warm_bytes);
    let (status, _, health) = get(addr, "/healthz");
    assert_eq!(status, 200, "healthz stays 200 for liveness probes");
    assert_eq!(health, b"degraded\n");

    // Past the open window a successful half-open probe re-closes it.
    std::thread::sleep(Duration::from_millis(350));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _, _) = post(addr, "/v1/anonymize?mechanism=promesse&seed=5", &body);
        if status == 200 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "breaker never admitted a successful probe (last status {status})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(metric(addr, "mobipriv_breaker_state"), Some(0.0));
    let (_, _, health) = get(addr, "/healthz");
    assert_eq!(health, b"ready\n");
    server.shutdown();
}

#[test]
fn slow_loris_head_times_out_with_clean_408() {
    let server = start(|config| {
        config.timeout = Duration::from_millis(300);
    });
    let addr = server.addr();
    let before = metric(addr, "mobipriv_client_timeouts_total").unwrap_or(0.0);

    // Open a connection and trickle a partial request head, slower than
    // the read budget: the server must answer a clean 408 and close,
    // not hold the worker hostage.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(b"POST /v1/anonymize?mechanism=promesse HTTP/1.1\r\nhost: t\r\n")
        .unwrap();
    // Never send the blank line; just wait out the deadline.
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("server closes cleanly");
    let (status, _, _) = parse_response(&raw);
    assert_eq!(status, 408, "stalled head maps to Request Timeout");

    let after = metric(addr, "mobipriv_client_timeouts_total").unwrap_or(0.0);
    assert!(
        after >= before + 1.0,
        "timeout must be counted ({before} -> {after})"
    );

    // The worker is free again: a well-formed request succeeds.
    let (status, _, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn exhausted_job_quarantines_with_attempt_history() {
    let server = start(|config| {
        config.resilience.max_attempts = 3;
        config.resilience.backoff_base_ms = 1;
        config.resilience.backoff_cap_ms = 4;
        // Keep the breaker out of the way: this test is about retries.
        config.resilience.breaker_failure_threshold = 100;
        config.chaos = Some(ChaosConfig {
            error_p: 1.0,
            ..ChaosConfig::default()
        });
    });
    let addr = server.addr();
    let body = workload_csv();

    let (status, _, response) = post(addr, "/v1/datasets", &body);
    assert_eq!(
        status, 200,
        "registration does not compute, chaos can't touch it"
    );
    let digest = json_str_field(&response, "digest").expect("digest");

    let (status, _, response) = post(
        addr,
        &format!("/v1/jobs?dataset={digest}&mechanism=promesse&seed=9"),
        b"",
    );
    assert!(status == 200 || status == 202, "submit answered {status}");
    let id = json_str_field(&response, "id").expect("job id");

    // Every attempt hits an injected transient fault; the job must land
    // in quarantine with the full per-attempt history on the record.
    let deadline = Instant::now() + Duration::from_secs(30);
    let record = loop {
        let (status, _, body) = get(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(status, 200);
        match json_str_field(&body, "status").as_deref() {
            Some("failed") => break String::from_utf8(body).unwrap(),
            Some("done") => panic!("job cannot succeed under error_p=1.0"),
            _ => {
                assert!(Instant::now() < deadline, "job never reached quarantine");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    assert!(
        record.contains("\"attempts\":["),
        "history missing: {record}"
    );
    assert!(
        record.contains("\"attempt\":3"),
        "all attempts recorded: {record}"
    );
    assert!(
        record.contains("\"transient\":true"),
        "classification recorded: {record}"
    );
    assert!(
        record.contains("\"backoff_ms\":"),
        "schedule recorded: {record}"
    );
    assert_eq!(
        metric(addr, "mobipriv_retries_total"),
        Some(2.0),
        "3 attempts = 2 retries"
    );
    assert!(
        metric(addr, "mobipriv_chaos_injections_total{kind=\"error\"}").unwrap_or(0.0) >= 3.0,
        "every attempt's fault shows up in the injection counter"
    );
    server.shutdown();
}
