//! The fault-injection matrix: every crash point in the blob/journal
//! write path, times three failure shapes, with recovery asserted for
//! each.
//!
//! A dry run with a counting injector first learns the exact labelled
//! I/O sequence one workload performs (pre-write `blob_create`,
//! mid-write `blob_write`, pre-rename `blob_fsync`/`blob_rename`,
//! post-rename/pre-journal `dir_fsync`, journal append
//! `journal_write`/`journal_fsync`). The matrix then replays the
//! workload once per `(op index, mode)` pair:
//!
//! * `Fail` / `ShortWrite` — transient: the op errors (short writes
//!   tear the buffer in half first); retrying the workload on the
//!   *same* store must succeed, and a reopen must recover everything.
//! * `Crash` — sticky: every I/O from that op on errors, the store
//!   instance is abandoned and the directory reopened cold, exactly
//!   like `kill -9` at that instant. Pre-existing state must survive
//!   byte-identical, the interrupted writes must be fully recovered or
//!   fully absent, and nothing may be quarantined — a clean crash
//!   never corrupts.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mobipriv_geo::LatLng;
use mobipriv_model::digest::dataset_digest;
use mobipriv_model::{Dataset, Fix, Timestamp, Trace, UserId};
use mobipriv_service::cache::CachedResult;
use mobipriv_service::store::faults::{FaultInjector, FaultMode};
use mobipriv_service::Store;

fn scratch(case: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mobipriv-faults-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset(user: u64) -> Dataset {
    Dataset::from_traces(vec![Trace::new(
        UserId::new(user),
        vec![
            Fix::new(LatLng::new(45.76, 4.84).unwrap(), Timestamp::new(0)),
            Fix::new(LatLng::new(45.77, 4.85).unwrap(), Timestamp::new(60)),
        ],
    )
    .unwrap()])
}

fn result(canonical: &str, body: &[u8]) -> CachedResult {
    CachedResult {
        canonical: canonical.to_owned(),
        content_type: "text/csv",
        headers: vec![
            ("x-mobipriv-mechanism", "raw".to_owned()),
            ("x-mobipriv-seed", "1".to_owned()),
        ],
        body: body.to_vec(),
    }
}

/// The interrupted workload: one dataset registration, one job
/// submission, one completed result — every record type the write path
/// produces except evictions (exercised separately below).
fn workload(store: &Store) -> std::io::Result<()> {
    let ds = dataset(20);
    store.put_dataset(&dataset_digest(&ds), &ds)?;
    store.job_submitted("bbbbbbbbbbbbbbbb", "canon|b")?;
    store.put_result(&result("canon|b", b"workload-body"))?;
    Ok(())
}

/// Seeds state that must survive whatever happens to the workload.
fn seed(root: &Path) -> (String, Vec<u8>) {
    let (store, _) = Store::open(root).expect("seed open");
    let ds = dataset(10);
    let digest = dataset_digest(&ds);
    store.put_dataset(&digest, &ds).expect("seed dataset");
    store
        .put_result(&result("canon|a", b"baseline-body"))
        .expect("seed result");
    (digest, b"baseline-body".to_vec())
}

fn ops_in_one_workload() -> Vec<&'static str> {
    let root = scratch("dry-run");
    let counting = FaultInjector::counting();
    let (store, _) = Store::open_with_faults(&root, counting.clone()).expect("open");
    workload(&store).expect("unfaulted workload succeeds");
    let ops = counting.ops();
    let _ = std::fs::remove_dir_all(&root);
    ops
}

#[test]
fn the_write_path_has_the_expected_crash_points() {
    let ops = ops_in_one_workload();
    let blob_path: Vec<&str> = vec![
        "blob_create",   // pre-write: temp file exists, empty
        "blob_write",    // mid-write: torn temp file
        "blob_fsync",    // pre-rename: full temp file, not visible
        "blob_rename",   // pre-rename boundary
        "dir_fsync",     // post-rename, pre-journal: orphan blob
        "journal_write", // mid-journal-append when torn
        "journal_fsync", // record written, durability pending
    ];
    let submit_path = ["journal_write", "journal_fsync"];
    let expected: Vec<&str> = blob_path
        .iter()
        .chain(submit_path.iter())
        .chain(blob_path.iter())
        .copied()
        .collect();
    assert_eq!(ops, expected, "op sequence drifted: update the matrix");
}

/// Reopens cold and returns `(datasets, results-as-(canonical, body),
/// quarantined)`.
type ColdState = (Vec<String>, Vec<(String, Vec<u8>)>, u64);

fn recover(root: &Path) -> ColdState {
    let (_, recovered) = Store::open(root).expect("recovery open never fails");
    (
        recovered.datasets.iter().map(dataset_digest).collect(),
        recovered
            .results
            .into_iter()
            .map(|r| (r.canonical, r.body))
            .collect(),
        recovered.report.quarantined,
    )
}

fn assert_recovered_state(
    case: &str,
    root: &Path,
    baseline_digest: &str,
    baseline_body: &[u8],
    workload_must_exist: bool,
) {
    let (datasets, results, quarantined) = recover(root);
    assert_eq!(quarantined, 0, "{case}: a clean crash never corrupts");
    assert!(
        datasets.iter().any(|d| d == baseline_digest),
        "{case}: baseline dataset lost"
    );
    let baseline = results
        .iter()
        .find(|(c, _)| c == "canon|a")
        .unwrap_or_else(|| panic!("{case}: baseline result lost"));
    assert_eq!(baseline.1, baseline_body, "{case}: baseline body changed");
    let workload_dataset = dataset_digest(&dataset(20));
    let workload_result = results.iter().find(|(c, _)| c == "canon|b");
    if workload_must_exist {
        assert!(
            datasets.iter().any(|d| d == &workload_dataset),
            "{case}: workload dataset missing after successful retry"
        );
        assert_eq!(
            workload_result.map(|(_, b)| b.as_slice()),
            Some(&b"workload-body"[..]),
            "{case}: workload result missing after successful retry"
        );
    } else if let Some((_, body)) = workload_result {
        // Interrupted: fully there or fully absent, never corrupt.
        assert_eq!(body, b"workload-body", "{case}: partial result served");
    }
}

#[test]
fn every_crash_point_recovers() {
    let op_count = ops_in_one_workload().len();
    assert_eq!(op_count, 16, "two blob puts + one submission");
    for nth in 0..op_count {
        for mode in [FaultMode::Fail, FaultMode::ShortWrite, FaultMode::Crash] {
            let case = format!("op{nth}-{mode:?}");
            let root = scratch(&case);
            let (baseline_digest, baseline_body) = seed(&root);
            let injector = FaultInjector::armed(mode, nth as u64);
            let (store, recovered) =
                Store::open_with_faults(&root, injector.clone()).expect("open armed");
            assert_eq!(
                recovered.report.quarantined, 0,
                "{case}: seed state was clean"
            );
            let outcome = workload(&store);
            assert!(outcome.is_err(), "{case}: the injected fault must surface");
            match mode {
                FaultMode::Fail | FaultMode::ShortWrite => {
                    assert!(!injector.crashed(), "{case}: transient faults clear");
                    // The same store retries and succeeds (idempotent
                    // blob writes, journal tail overwritten).
                    workload(&store).unwrap_or_else(|e| panic!("{case}: retry failed: {e}"));
                    drop(store);
                    assert_recovered_state(&case, &root, &baseline_digest, &baseline_body, true);
                }
                FaultMode::Crash => {
                    assert!(injector.crashed(), "{case}: crash is sticky");
                    assert!(workload(&store).is_err(), "{case}: a dead store stays dead");
                    drop(store); // "kill -9": abandon with the disk as-is
                    assert_recovered_state(&case, &root, &baseline_digest, &baseline_body, false);
                }
            }
            let _ = std::fs::remove_dir_all(&root);
        }
    }
}

#[test]
fn faulted_eviction_keeps_the_cold_state_consistent() {
    // An eviction whose journal append dies must not strand the store:
    // the blob stays (the journal still says live), and the next boot
    // serves the entry again — stale but valid, never corrupt.
    let root = scratch("evict-crash");
    let (digest, _) = seed(&root);
    let injector = FaultInjector::armed(FaultMode::Crash, 0);
    let (store, _) = Store::open_with_faults(&root, injector).expect("open armed");
    assert!(store.dataset_evicted(&digest).is_err(), "append died");
    drop(store);
    let (datasets, results, quarantined) = recover(&root);
    assert_eq!(quarantined, 0);
    assert!(datasets.iter().any(|d| d == &digest), "entry resurrected");
    assert_eq!(results.len(), 1);
    // A successful eviction on the recovered store then really deletes.
    let (store, _) = Store::open(&root).expect("reopen");
    store.dataset_evicted(&digest).expect("clean evict");
    drop(store);
    let (datasets, _, _) = recover(&root);
    assert!(!datasets.iter().any(|d| d == &digest), "evicted for good");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_sticky_crash_disables_every_surface() {
    let root = scratch("sticky");
    let injector = FaultInjector::armed(FaultMode::Crash, 0);
    let (store, _) = Store::open_with_faults(&root, injector).expect("open");
    let ds = dataset(1);
    assert!(store.put_dataset(&dataset_digest(&ds), &ds).is_err());
    assert!(store.put_result(&result("c", b"x")).is_err());
    assert!(store.job_submitted("id", "c").is_err());
    assert!(store.dataset_evicted("0000000000000000").is_err());
    assert!(store.result_evicted(&result("c", b"x")).is_err());
    // Stats still answer (they read in-memory indexes, not the disk).
    let stats = store.stats();
    assert_eq!(stats.blobs, 0);
    let _ = std::fs::remove_dir_all(&root);
}

/// Keep `Arc<Store>` usable across threads the way `AppState` holds it.
#[test]
fn concurrent_puts_with_a_transient_fault_do_not_poison() {
    let root = scratch("concurrent");
    let injector = FaultInjector::armed(FaultMode::Fail, 3);
    let (store, _) = Store::open_with_faults(&root, injector).expect("open");
    let store: Arc<Store> = store;
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let body = format!("body-{i}").into_bytes();
                let canonical = format!("canon|{i}");
                store.put_result(&result(&canonical, &body)).is_ok()
            })
        })
        .collect();
    let succeeded = handles
        .into_iter()
        .map(|h| h.join().expect("no panic"))
        .filter(|ok| *ok)
        .count();
    assert!(succeeded >= 3, "exactly one put hit the injected fault");
    drop(store);
    let (_, results, quarantined) = recover(&root);
    assert_eq!(quarantined, 0);
    assert!(results.len() >= 3);
    for (canonical, body) in &results {
        let i = canonical.strip_prefix("canon|").unwrap();
        assert_eq!(body, format!("body-{i}").as_bytes());
    }
    let _ = std::fs::remove_dir_all(&root);
}
