//! Integration tests for the dataset registry, the async job engine
//! and the content-addressed result cache — over real sockets, held to
//! the same determinism contract as the batch engine: cold, warm and
//! coalesced responses must be byte-identical, and identical work must
//! run exactly once (single-flight).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use mobipriv_core::{Engine, Mechanism};
use mobipriv_eval::Json;
use mobipriv_model::{read_csv, write_csv, write_ndjson, Dataset};
use mobipriv_service::registry::{build_mechanism, Params};
use mobipriv_service::{Server, ServerConfig, ServerHandle};
use mobipriv_synth::scenarios;

fn start(configure: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut config = ServerConfig::default();
    configure(&mut config);
    Server::bind(config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

/// Sends raw bytes, returns (status, lowercased headers, body).
fn exchange(addr: SocketAddr, request: &[u8]) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head/body separator");
    let head = std::str::from_utf8(&raw[..split]).expect("ASCII head");
    let body = raw[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    (status, headers, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, HashMap<String, String>, Vec<u8>) {
    exchange(
        addr,
        format!("GET {target} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, target: &str, body: &[u8]) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut request = format!(
        "POST {target} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(body);
    exchange(addr, &request)
}

fn csv_of(dataset: &Dataset) -> Vec<u8> {
    let mut out = Vec::new();
    write_csv(dataset, &mut out).unwrap();
    out
}

fn parse_json(body: &[u8]) -> Json {
    Json::parse(std::str::from_utf8(body).expect("UTF-8 JSON")).expect("parseable JSON")
}

fn str_of<'a>(doc: &'a Json, key: &str) -> &'a str {
    doc.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing string `{key}`"))
}

/// Registers a dataset, returning its digest.
fn register(addr: SocketAddr, csv: &[u8]) -> String {
    let (status, headers, body) = post(addr, "/v1/datasets", csv);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let doc = parse_json(&body);
    let digest = str_of(&doc, "digest").to_owned();
    assert_eq!(headers["x-mobipriv-digest"], digest);
    digest
}

/// Polls a job to a terminal state, panicking on `failed` or timeout.
fn poll_done(addr: SocketAddr, id: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _, body) = get(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let doc = parse_json(&body);
        match str_of(&doc, "status") {
            "done" => return doc,
            "failed" => panic!("job failed: {}", String::from_utf8_lossy(&body)),
            _ if Instant::now() > deadline => panic!("job never finished"),
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn stat_u64(addr: SocketAddr, key: &str) -> u64 {
    let (status, _, body) = get(addr, "/v1/stats");
    assert_eq!(status, 200);
    parse_json(&body)
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing counter `{key}`"))
}

/// What the batch engine produces for this query string.
fn batch_reference(dataset: &Dataset, query: &[(&str, &str)], seed: u64) -> Vec<u8> {
    let pairs: Vec<(String, String)> = query
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    let mechanism: Box<dyn Mechanism> = build_mechanism(Params(&pairs)).expect("valid query");
    csv_of(&Engine::sequential().protect(mechanism.as_ref(), dataset, seed))
}

#[test]
fn register_job_poll_fetch_end_to_end() {
    let workload = scenarios::serving_day(10, 3);
    let csv = csv_of(&workload.dataset);
    let canonical = read_csv(csv.as_slice()).unwrap();
    let server = start(|_| {});
    let addr = server.addr();

    // Register once; re-upload is an idempotent `exists`.
    let digest = register(addr, &csv);
    let (_, _, body) = post(addr, "/v1/datasets", &csv);
    let doc = parse_json(&body);
    assert_eq!(str_of(&doc, "registered"), "exists");
    assert_eq!(str_of(&doc, "digest"), digest);

    // Submit, poll to done, fetch.
    let target = format!("/v1/jobs?dataset={digest}&mechanism=promesse&alpha=100&seed=9");
    let (status, _, body) = post(addr, &target, b"");
    assert_eq!(status, 202, "fresh job is Accepted");
    let doc = parse_json(&body);
    let id = str_of(&doc, "id").to_owned();
    assert_eq!(str_of(&doc, "status"), "queued");
    assert_eq!(str_of(&doc, "submitted"), "enqueued");
    assert_eq!(str_of(&doc, "result"), format!("/v1/results/{id}"));
    let done = poll_done(addr, &id);
    assert_eq!(
        done.get("progress").and_then(Json::as_f64),
        Some(1.0),
        "done job reports full progress"
    );

    let (status, headers, result) = get(addr, &format!("/v1/results/{id}"));
    assert_eq!(status, 200);
    assert_eq!(headers["content-type"], "text/csv");
    assert_eq!(headers["x-mobipriv-cache"], "hit");
    let expected = batch_reference(
        &canonical,
        &[("mechanism", "promesse"), ("alpha", "100")],
        9,
    );
    assert_eq!(result, expected, "job result diverges from batch engine");

    // The synchronous path for the same work is the same cache entry:
    // byte-identical body, served as a hit, no extra computation.
    let computations = stat_u64(addr, "computations");
    let (status, headers, sync_body) = post(
        addr,
        "/v1/anonymize?mechanism=promesse&alpha=100&seed=9",
        &csv,
    );
    assert_eq!(status, 200);
    assert_eq!(headers["x-mobipriv-cache"], "hit");
    assert_eq!(sync_body, expected, "sync and job surfaces diverge");
    assert_eq!(stat_u64(addr, "computations"), computations);

    // Resubmitting the identical job answers done immediately (200).
    let (status, _, body) = post(addr, &target, b"");
    assert_eq!(status, 200, "warm resubmission is done");
    let doc = parse_json(&body);
    assert_eq!(str_of(&doc, "status"), "done");
    server.shutdown();
}

#[test]
fn sync_anonymize_caches_and_reports_hit_vs_miss() {
    let workload = scenarios::serving_day(6, 4);
    let csv = csv_of(&workload.dataset);
    let server = start(|_| {});
    let addr = server.addr();
    let target = "/v1/anonymize?mechanism=geoind&epsilon=0.05&seed=11";
    let (status, headers, cold) = post(addr, target, &csv);
    assert_eq!(status, 200);
    assert_eq!(headers["x-mobipriv-cache"], "miss");
    let (status, headers, warm) = post(addr, target, &csv);
    assert_eq!(status, 200);
    assert_eq!(headers["x-mobipriv-cache"], "hit");
    assert_eq!(cold, warm, "hit body differs from cold computation");
    assert_eq!(stat_u64(addr, "computations"), 1);
    // A different seed is a different key.
    let (_, headers, other) = post(
        addr,
        "/v1/anonymize?mechanism=geoind&epsilon=0.05&seed=12",
        &csv,
    );
    assert_eq!(headers["x-mobipriv-cache"], "miss");
    assert_ne!(cold, other);
    assert_eq!(stat_u64(addr, "computations"), 2);
    server.shutdown();
}

#[test]
fn ndjson_and_csv_uploads_share_one_digest_and_cache_entry() {
    let workload = scenarios::serving_day(5, 8);
    let csv = csv_of(&workload.dataset);
    let mut ndjson = Vec::new();
    write_ndjson(&workload.dataset, &mut ndjson).unwrap();
    let server = start(|_| {});
    let addr = server.addr();
    let digest = register(addr, &csv);
    let (_, _, body) = post(addr, "/v1/datasets?format=ndjson", &ndjson);
    let doc = parse_json(&body);
    assert_eq!(str_of(&doc, "digest"), digest, "wire format changed digest");
    assert_eq!(str_of(&doc, "registered"), "exists");
    // Same dataset through the sync path as NDJSON: hits the entry a
    // CSV upload of the same content created.
    let target = "/v1/anonymize?mechanism=raw&seed=0";
    let (_, headers, a) = post(addr, target, &csv);
    assert_eq!(headers["x-mobipriv-cache"], "miss");
    let (_, headers, b) = post(addr, &format!("{target}&format=ndjson"), &ndjson);
    assert_eq!(headers["x-mobipriv-cache"], "hit", "cross-format miss");
    assert_eq!(a, b);
    server.shutdown();
}

#[test]
fn anonymize_by_registered_digest_matches_body_upload() {
    let workload = scenarios::serving_day(8, 6);
    let csv = csv_of(&workload.dataset);
    let server = start(|_| {});
    let addr = server.addr();
    let digest = register(addr, &csv);
    let (status, headers, by_digest) = post(
        addr,
        &format!("/v1/anonymize?dataset={digest}&mechanism=promesse&alpha=150&seed=2"),
        b"",
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&by_digest));
    assert_eq!(headers["x-mobipriv-cache"], "miss");
    let (status, headers, by_body) = post(
        addr,
        "/v1/anonymize?mechanism=promesse&alpha=150&seed=2",
        &csv,
    );
    assert_eq!(status, 200);
    assert_eq!(
        headers["x-mobipriv-cache"], "hit",
        "digest-referenced and body-carried inputs are one cache key"
    );
    assert_eq!(by_digest, by_body);
    // Unregistered digest: 404.
    let (status, _, _) = post(
        addr,
        "/v1/anonymize?dataset=ffffffffffffffff&mechanism=raw",
        b"",
    );
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn concurrent_identical_sync_requests_coalesce_into_one_computation() {
    let workload = scenarios::serving_day(20, 5);
    let csv = csv_of(&workload.dataset);
    let server = start(|c| {
        c.workers = 8;
        c.queue_depth = 32;
    });
    let addr = server.addr();
    let target = "/v1/anonymize?mechanism=promesse&alpha=100&seed=77";
    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let csv = &csv;
                scope.spawn(move || {
                    let (status, _, body) = post(addr, target, csv);
                    assert_eq!(status, 200);
                    body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "coalesced responses diverge");
    }
    assert_eq!(
        stat_u64(addr, "computations"),
        1,
        "single-flight violated on the sync path"
    );
    server.shutdown();
}

#[test]
fn concurrent_identical_job_submissions_coalesce_onto_one_job() {
    let workload = scenarios::serving_day(20, 7);
    let csv = csv_of(&workload.dataset);
    let server = start(|c| {
        c.workers = 8;
        c.job_workers = 4;
    });
    let addr = server.addr();
    let digest = register(addr, &csv);
    let target = format!("/v1/jobs?dataset={digest}&mechanism=geoind&epsilon=0.01&seed=5");
    let ids: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let target = &target;
                scope.spawn(move || {
                    let (status, _, body) = post(addr, target, b"");
                    assert!(status == 200 || status == 202, "HTTP {status}");
                    parse_json(&body)
                        .get("id")
                        .and_then(Json::as_str)
                        .unwrap()
                        .to_owned()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for id in &ids[1..] {
        assert_eq!(id, &ids[0], "identical specs got different job ids");
    }
    poll_done(addr, &ids[0]);
    assert_eq!(
        stat_u64(addr, "computations"),
        1,
        "single-flight violated across concurrent submissions"
    );
    let (status, _, a) = get(addr, &format!("/v1/results/{}", ids[0]));
    assert_eq!(status, 200);
    let (_, _, b) = get(addr, &format!("/v1/results/{}", ids[0]));
    assert_eq!(a, b, "repeated fetches differ");
    server.shutdown();
}

#[test]
fn evaluate_jobs_return_deterministic_utility_json() {
    let workload = scenarios::serving_day(10, 2);
    let csv = csv_of(&workload.dataset);
    let server = start(|_| {});
    let addr = server.addr();
    let digest = register(addr, &csv);
    let target =
        format!("/v1/jobs?dataset={digest}&kind=evaluate&mechanism=promesse&alpha=100&seed=4");
    let (_, _, body) = post(addr, &target, b"");
    let id = parse_json(&body)
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_owned();
    poll_done(addr, &id);
    let (status, headers, report) = get(addr, &format!("/v1/results/{id}"));
    assert_eq!(status, 200);
    assert_eq!(headers["content-type"], "application/json");
    let doc = parse_json(&report);
    assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(1));
    assert_eq!(str_of(&doc, "kind"), "utility_report");
    assert_eq!(str_of(&doc, "dataset"), digest);
    assert_eq!(str_of(&doc, "mechanism"), "promesse alpha=100");
    let distortion = doc.get("distortion").expect("distortion section");
    assert!(distortion.get("mean_m").and_then(Json::as_f64).unwrap() >= 0.0);
    let coverage = doc.get("coverage").expect("coverage section");
    let f1 = coverage.get("f1").and_then(Json::as_f64).unwrap();
    assert!((0.0..=1.0).contains(&f1));
    // Byte-determinism across fetches and resubmission.
    let (_, _, again) = get(addr, &format!("/v1/results/{id}"));
    assert_eq!(report, again);
    let (status, _, resubmit) = post(addr, &target, b"");
    assert_eq!(status, 200);
    assert_eq!(str_of(&parse_json(&resubmit), "status"), "done");
    // The anonymize job for the same tuple is a *different* key.
    let anon = format!("/v1/jobs?dataset={digest}&mechanism=promesse&alpha=100&seed=4");
    let (_, _, body) = post(addr, &anon, b"");
    assert_ne!(str_of(&parse_json(&body), "id"), id);
    server.shutdown();
}

#[test]
fn job_and_result_errors_map_to_proper_statuses() {
    let workload = scenarios::serving_day(4, 1);
    let csv = csv_of(&workload.dataset);
    let server = start(|_| {});
    let addr = server.addr();
    let digest = register(addr, &csv);

    // Submission validation.
    for (target, expected) in [
        ("/v1/jobs?mechanism=raw".to_owned(), 400), // missing dataset
        (
            "/v1/jobs?dataset=ffffffffffffffff&mechanism=raw".to_owned(),
            404,
        ),
        (format!("/v1/jobs?dataset={digest}"), 400), // missing mechanism
        (
            format!("/v1/jobs?dataset={digest}&mechanism=warp-drive"),
            400,
        ),
        (
            format!("/v1/jobs?dataset={digest}&mechanism=raw&kind=teleport"),
            400,
        ),
        (
            format!("/v1/jobs?dataset={digest}&mechanism=promesse&alpha=banana"),
            400,
        ),
    ] {
        let (status, _, body) = post(addr, &target, b"");
        assert_eq!(
            status,
            expected,
            "{target}: {}",
            String::from_utf8_lossy(&body)
        );
    }

    // Lookups.
    let (status, _, _) = get(addr, "/v1/jobs/no-such-job");
    assert_eq!(status, 404);
    let (status, _, _) = get(addr, "/v1/results/no-such-key");
    assert_eq!(status, 404);
    let (status, _, _) = get(addr, "/v1/datasets/ffffffffffffffff");
    assert_eq!(status, 404);

    // Method mapping on the new routes.
    let (status, headers, _) = get(addr, "/v1/anonymize");
    assert_eq!(status, 405);
    assert_eq!(headers["allow"], "POST");
    let (status, headers, _) = exchange(addr, b"DELETE /v1/jobs HTTP/1.1\r\nhost: t\r\n\r\n");
    assert_eq!(status, 405);
    assert_eq!(headers["allow"], "GET, POST");
    let (status, _, _) = exchange(addr, b"DELETE /v1/results/x HTTP/1.1\r\nhost: t\r\n\r\n");
    assert_eq!(status, 405);

    // Registry listing includes the registered digest.
    let (status, _, body) = get(addr, "/v1/datasets");
    assert_eq!(status, 200);
    assert!(String::from_utf8(body).unwrap().contains(&digest));
    // Empty body registration is a 400, not a registered empty dataset.
    let (status, _, _) = post(addr, "/v1/datasets", b"");
    assert_eq!(status, 400);
    server.shutdown();
}

#[test]
fn evicted_results_are_recomputed_on_resubmission() {
    let workload = scenarios::serving_day(6, 11);
    let csv = csv_of(&workload.dataset);
    // Budget fits one raw-mechanism result (body == canonical input)
    // but not two: the second job evicts the first.
    let budget = (csv.len() as u64 * 3) / 2;
    let server = start(move |c| c.result_budget_bytes = budget);
    let addr = server.addr();
    let digest = register(addr, &csv);

    let submit = |seed: u64| -> String {
        let (status, _, body) = post(
            addr,
            &format!("/v1/jobs?dataset={digest}&mechanism=raw&seed={seed}"),
            b"",
        );
        assert!(status == 200 || status == 202, "HTTP {status}");
        parse_json(&body)
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned()
    };

    let a = submit(1);
    poll_done(addr, &a);
    let (status, _, first) = get(addr, &format!("/v1/results/{a}"));
    assert_eq!(status, 200);
    let b = submit(2);
    poll_done(addr, &b);
    // Job B's result evicted A's: the address 404s...
    let (status, _, _) = get(addr, &format!("/v1/results/{a}"));
    assert_eq!(status, 404, "a's result should be evicted");
    // ...and resubmitting A must *recompute*, not coalesce onto the
    // stale done record (which would 200 `done` while the result keeps
    // 404ing forever).
    let a_again = submit(1);
    assert_eq!(a_again, a, "same spec, same content address");
    poll_done(addr, &a);
    let (status, _, recomputed) = get(addr, &format!("/v1/results/{a}"));
    assert_eq!(status, 200, "resubmission recomputed the evicted result");
    assert_eq!(recomputed, first, "recomputation is byte-identical");
    server.shutdown();
}

#[test]
fn pending_results_answer_202_with_the_job_document() {
    // A slow job (kdelta on a larger workload) so the poll observes the
    // pending window.
    let workload = scenarios::serving_day(60, 9);
    let csv = csv_of(&workload.dataset);
    let server = start(|_| {});
    let addr = server.addr();
    let digest = register(addr, &csv);
    let target = format!("/v1/jobs?dataset={digest}&mechanism=kdelta&k=2&delta=200&seed=3");
    let (_, _, body) = post(addr, &target, b"");
    let id = parse_json(&body)
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_owned();
    // Immediately race the result endpoint: while the job is queued or
    // running it must answer 202 + status document, never 500.
    let (status, _, body) = get(addr, &format!("/v1/results/{id}"));
    assert!(status == 202 || status == 200, "HTTP {status}");
    if status == 202 {
        let doc = parse_json(&body);
        assert!(matches!(str_of(&doc, "status"), "queued" | "running"));
    }
    poll_done(addr, &id);
    let (status, _, _) = get(addr, &format!("/v1/results/{id}"));
    assert_eq!(status, 200);
    server.shutdown();
}
