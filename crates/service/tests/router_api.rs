//! Integration tests on the shard router over real sockets: boot
//! in-process shard servers plus a [`Router`], and hold the routed
//! responses to the same contract as a single node — byte-identical
//! bodies, keyed placement on exactly one shard, per-shard failure
//! domains, and a bounded upstream connection pool.

use std::time::Duration;

use mobipriv_service::{client, Router, RouterConfig, RouterHandle, Server, ServerConfig};

struct Cluster {
    shards: Vec<mobipriv_service::ServerHandle>,
    names: Vec<String>,
    router: Option<RouterHandle>,
}

impl Cluster {
    /// Boots `n` single-node shards and a router over them.
    fn boot(n: usize, configure: impl FnOnce(&mut RouterConfig)) -> Cluster {
        let shards: Vec<_> = (0..n)
            .map(|_| {
                Server::bind(ServerConfig {
                    workers: 2,
                    ..ServerConfig::default()
                })
                .expect("bind shard")
                .spawn()
                .expect("spawn shard")
            })
            .collect();
        let names: Vec<String> = shards.iter().map(|s| s.addr().to_string()).collect();
        let mut config = RouterConfig {
            shards: names.clone(),
            workers: 4,
            ..RouterConfig::default()
        };
        configure(&mut config);
        let router = Router::bind(config)
            .expect("bind router")
            .spawn()
            .expect("spawn router");
        Cluster {
            shards,
            names,
            router: Some(router),
        }
    }

    fn router_addr(&self) -> std::net::SocketAddr {
        self.router.as_ref().expect("router running").addr()
    }

    /// Registers `csv` through the router; returns (digest, owner name).
    fn register(&self, csv: &[u8]) -> (String, String) {
        let addr = self.router_addr();
        let (status, body) = client::request(addr, "POST", "/v1/datasets", csv).expect("register");
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let digest = client::json_str_field(&body, "digest").expect("digest field");
        let (status, body) =
            client::request(addr, "GET", &format!("/v1/route?key={digest}"), b"").expect("route");
        assert_eq!(status, 200);
        let owner = client::json_str_field(&body, "shard").expect("shard field");
        (digest, owner)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Some(router) = self.router.take() {
            router.shutdown();
        }
        for shard in self.shards.drain(..) {
            shard.shutdown();
        }
    }
}

fn workload(rows: u32) -> Vec<u8> {
    let mut csv = b"user,trace,lat,lng,time\n".to_vec();
    for i in 0..rows {
        csv.extend_from_slice(
            format!(
                "1,0,{:.4},{:.4},{}\n",
                48.85 + 0.001 * i as f64,
                2.35,
                30 * i
            )
            .as_bytes(),
        );
    }
    csv
}

#[test]
fn router_matches_a_single_node_byte_for_byte() {
    let cluster = Cluster::boot(3, |_| {});
    let reference = Server::bind(ServerConfig::default())
        .expect("bind reference")
        .spawn()
        .expect("spawn reference");
    let csv = workload(12);

    let (digest, _) = cluster.register(&csv);
    let (status, body) =
        client::request(reference.addr(), "POST", "/v1/datasets", &csv).expect("register ref");
    assert_eq!(status, 200);
    assert_eq!(
        client::json_str_field(&body, "digest").unwrap(),
        digest,
        "content addressing is deployment-independent"
    );

    let target = "/v1/anonymize?mechanism=promesse&alpha=100&seed=42";
    let (status, via_router) =
        client::request(cluster.router_addr(), "POST", target, &csv).expect("anonymize via router");
    assert_eq!(status, 200);
    let (status, via_ref) =
        client::request(reference.addr(), "POST", target, &csv).expect("anonymize via reference");
    assert_eq!(status, 200);
    assert_eq!(via_router, via_ref, "routing changed the bytes");
    reference.shutdown();
}

#[test]
fn each_dataset_lands_on_exactly_one_shard() {
    let cluster = Cluster::boot(3, |_| {});
    let (digest, owner) = cluster.register(&workload(8));
    let target = format!("/v1/datasets/{digest}");
    let mut holders = Vec::new();
    for name in &cluster.names {
        let (status, _) = client::request(name.as_str(), "GET", &target, b"").expect("probe shard");
        if status == 200 {
            holders.push(name.clone());
        } else {
            assert_eq!(status, 404, "unexpected status from {name}");
        }
    }
    assert_eq!(holders, vec![owner], "keyed placement is single-homed");
}

#[test]
fn a_dead_shard_degrades_only_its_own_key_range() {
    let mut cluster = Cluster::boot(3, |_| {});
    // Register datasets until two land on different shards (bounded:
    // placement is ~uniform over 3 shards, and rows vary the digest).
    let (digest_a, owner_a) = cluster.register(&workload(8));
    let mut other = None;
    for rows in 9..40 {
        let csv = workload(rows);
        let (digest, owner) = cluster.register(&csv);
        if owner != owner_a {
            other = Some((csv, digest));
            break;
        }
    }
    let (csv_b, digest_b) = other.expect("30 datasets all landed on one of 3 shards");

    let target = "/v1/anonymize?mechanism=geoind&epsilon=0.01&seed=9";
    let (status, reference) =
        client::request(cluster.router_addr(), "POST", target, &csv_b).expect("warm reference");
    assert_eq!(status, 200);

    // Shoot the shard owning dataset A.
    let dead = cluster
        .names
        .iter()
        .position(|name| *name == owner_a)
        .expect("owner is a cluster member");
    cluster.shards.remove(dead).shutdown();

    let addr = cluster.router_addr();
    // Its key range answers 503 (degraded, not wedged)…
    let (status, _) =
        client::request(addr, "GET", &format!("/v1/datasets/{digest_a}"), b"").expect("dead range");
    assert_eq!(status, 503);
    // …while dataset B's range keeps serving the same bytes…
    let (status, body) = client::request(addr, "POST", target, &csv_b).expect("live range");
    assert_eq!(status, 200);
    assert_eq!(body, reference, "degradation changed surviving bytes");
    let (status, _) =
        client::request(addr, "GET", &format!("/v1/datasets/{digest_b}"), b"").expect("live meta");
    assert_eq!(status, 200);
    // …stateless routes fail over, health degrades, and the errors are
    // counted against the dead shard.
    let (status, _) = client::request(addr, "GET", "/v1/mechanisms", b"").expect("failover");
    assert_eq!(status, 200);
    let (status, body) = client::request(addr, "GET", "/healthz", b"").expect("health");
    assert_eq!((status, body.as_slice()), (200, &b"degraded\n"[..]));
    let (status, body) = client::request(addr, "GET", "/metrics", b"").expect("metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    let errors = text
        .lines()
        .find(|l| {
            l.starts_with(&format!(
                "mobipriv_route_errors_total{{shard=\"{owner_a}\"}}"
            ))
        })
        .expect("route errors exported per shard");
    assert!(
        !errors.ends_with(" 0"),
        "dead-shard errors not counted: {errors}"
    );
}

#[test]
fn bounded_upstream_pool_serves_more_clients_than_connections() {
    // One upstream connection per shard, four concurrent clients: the
    // checkout queue (not over-dialing) absorbs the excess, so every
    // request still succeeds against two-worker shards.
    let cluster = Cluster::boot(2, |config| {
        config.upstream_conns = 1;
        config.timeout = Duration::from_secs(30);
    });
    let addr = cluster.router_addr();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(move || {
                for _ in 0..5 {
                    let (status, body) =
                        client::request(addr, "GET", "/v1/mechanisms", b"").expect("request");
                    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
                }
            });
        }
    });
}
