//! Durability over real sockets and real processes: a `mobipriv-serve`
//! child with `--data-dir` is SIGKILLed mid-workload at randomized
//! points, restarted on the same directory, and must serve previously
//! finished results as byte-identical cache hits (`x-mobipriv-cache:
//! hit`) without recomputation, with registered datasets resolvable and
//! in-flight jobs either absent or cleanly rerunnable. Plus an
//! in-process socket test pinning the exact store gauge values
//! `/v1/stats` and `/metrics` report after a known workload.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use mobipriv_eval::Json;
use mobipriv_model::write_csv;
use mobipriv_service::{Server, ServerConfig};
use mobipriv_synth::scenarios;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mobipriv-persist-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sends raw bytes, returns (status, lowercased headers, body).
fn exchange(addr: SocketAddr, request: &[u8]) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head/body separator");
    let head = std::str::from_utf8(&raw[..split]).expect("ASCII head");
    let body = raw[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    (status, headers, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, HashMap<String, String>, Vec<u8>) {
    exchange(
        addr,
        format!("GET {target} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, target: &str, body: &[u8]) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut request = format!(
        "POST {target} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(body);
    exchange(addr, &request)
}

fn parse_json(body: &[u8]) -> Json {
    Json::parse(std::str::from_utf8(body).expect("UTF-8 JSON")).expect("parseable JSON")
}

fn str_of<'a>(doc: &'a Json, key: &str) -> &'a str {
    doc.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing string `{key}`"))
}

fn register(addr: SocketAddr, csv: &[u8]) -> String {
    let (status, _, body) = post(addr, "/v1/datasets", csv);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    str_of(&parse_json(&body), "digest").to_owned()
}

/// `params` is the mechanism portion of the query, e.g.
/// `mechanism=promesse&alpha=150&seed=1` or plain `mechanism=raw`.
fn submit(addr: SocketAddr, digest: &str, params: &str) -> String {
    let target = format!("/v1/jobs?dataset={digest}&{params}");
    let (status, _, body) = post(addr, &target, b"");
    assert!(
        status == 202 || status == 200,
        "submit: {status} {}",
        String::from_utf8_lossy(&body)
    );
    str_of(&parse_json(&body), "id").to_owned()
}

fn poll_done(addr: SocketAddr, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, _, body) = get(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        match str_of(&parse_json(&body), "status") {
            "done" => return,
            "failed" => panic!("job failed: {}", String::from_utf8_lossy(&body)),
            _ if Instant::now() > deadline => panic!("job never finished"),
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// A `mobipriv-serve` child process bound to an ephemeral port.
struct ServeProc {
    child: Child,
    addr: SocketAddr,
}

impl ServeProc {
    fn start(data_dir: &Path) -> ServeProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_mobipriv-serve"))
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--data-dir")
            .arg(data_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn mobipriv-serve");
        // First stdout line: `mobipriv-serve listening on http://ADDR ...`
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read startup line");
        let addr: SocketAddr = line
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparseable startup line: {line:?}"));
        ServeProc { child, addr }
    }

    /// SIGKILL — no shutdown hook runs, exactly the crash the journal
    /// and fsync ordering exist to survive.
    fn kill_9(mut self) {
        self.child.kill().expect("kill -9");
        self.child.wait().expect("reap");
    }
}

#[test]
fn kill_nine_then_restart_serves_byte_identical_hits() {
    let data_dir = scratch("kill9");
    let workload = scenarios::serving_day(12, 3);
    let mut csv = Vec::new();
    write_csv(&workload.dataset, &mut csv).unwrap();

    // Deterministic pseudo-random kill points, seeded from the clock;
    // the seed is printed so any failure replays exactly.
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos() as u64;
    println!("kill-point seed: {seed}");
    let mut lcg = seed | 1;
    let mut next_delay_ms = move || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lcg >> 58 // 0..64 ms
    };

    // Phase 1: a clean workload that must survive every later crash.
    // `mechanism=raw` is deliberate: its result body IS the canonical
    // CSV, so its body digest equals the dataset digest and the two
    // blobs would collide in one file were they not namespaced by kind
    // — the crash rounds below then prove neither is quarantined or
    // lost.
    let mechanisms = [
        "mechanism=promesse&alpha=150&seed=1",
        "mechanism=promesse&alpha=150&seed=2",
        "mechanism=raw",
    ];
    let server = ServeProc::start(&data_dir);
    let addr = server.addr;
    let digest = register(addr, &csv);
    let mut finished: Vec<(String, Vec<u8>)> = Vec::new();
    for params in mechanisms {
        let id = submit(addr, &digest, params);
        poll_done(addr, &id);
        let (status, headers, body) = get(addr, &format!("/v1/results/{id}"));
        assert_eq!(status, 200);
        assert_eq!(headers["x-mobipriv-cache"], "hit");
        finished.push((id, body));
    }

    // Phase 2: three crash/restart rounds, each killing the server at a
    // randomized instant after submitting fresh (in-flight) work.
    let mut server = server;
    let mut inflight: Vec<(String, String)> = Vec::new();
    for round in 0..3u64 {
        let params = format!("mechanism=promesse&alpha=150&seed={}", 100 + round);
        let id = submit(server.addr, &digest, &params);
        inflight.push((params, id));
        std::thread::sleep(Duration::from_millis(next_delay_ms()));
        server.kill_9();

        server = ServeProc::start(&data_dir);
        let addr = server.addr;

        // The registered dataset still resolves by digest.
        let (status, _, _) = get(addr, &format!("/v1/datasets/{digest}"));
        assert_eq!(status, 200, "round {round}: dataset lost across restart");

        // Every previously finished result is a byte-identical warm hit.
        for (id, expected) in &finished {
            let (status, headers, body) = get(addr, &format!("/v1/results/{id}"));
            assert_eq!(status, 200, "round {round}: finished result lost");
            assert_eq!(
                headers["x-mobipriv-cache"], "hit",
                "round {round}: restart hit recomputed"
            );
            assert_eq!(
                &body, expected,
                "round {round}: body changed across restart"
            );
        }
    }

    // Phase 3: in-flight jobs are absent or already done — never a
    // corrupt half-state — and resubmitting them runs to completion
    // with output identical to a never-crashed server.
    let addr = server.addr;
    for (params, id) in inflight {
        let (status, _, body) = get(addr, &format!("/v1/jobs/{id}"));
        match status {
            404 => {} // not resurrected: rerunnable below
            200 => {
                let state = str_of(&parse_json(&body), "status").to_owned();
                assert!(
                    state == "done" || state == "queued" || state == "running",
                    "in-flight job in bad state {state}"
                );
            }
            other => panic!("job poll returned {other}"),
        }
        let rerun = submit(addr, &digest, &params);
        assert_eq!(rerun, id, "content-addressed id is stable");
        poll_done(addr, &rerun);
        let (status, _, _) = get(addr, &format!("/v1/results/{rerun}"));
        assert_eq!(status, 200, "rerun result fetchable");
    }

    // The reference: the same jobs on a fresh in-memory server produce
    // the same bytes the persisted path served after every crash.
    let reference = ServeProc::start(&scratch("kill9-ref"));
    let ref_digest = register(reference.addr, &csv);
    assert_eq!(ref_digest, digest, "content addressing is deterministic");
    for params in mechanisms {
        let id = submit(reference.addr, &digest, params);
        poll_done(reference.addr, &id);
        let (_, _, body) = get(reference.addr, &format!("/v1/results/{id}"));
        let expected = &finished
            .iter()
            .find(|(fid, _)| fid == &id)
            .expect("same content-addressed id")
            .1;
        assert_eq!(&body, expected, "persisted hit diverges from fresh compute");
    }
    reference.kill_9();
    server.kill_9();
    let _ = std::fs::remove_dir_all(&data_dir);
    let _ = std::fs::remove_dir_all(scratch("kill9-ref"));
}

#[test]
fn store_gauges_report_exact_values_over_sockets() {
    let data_dir = scratch("gauges");
    let workload = scenarios::serving_day(8, 2);
    let mut csv = Vec::new();
    write_csv(&workload.dataset, &mut csv).unwrap();

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: Some(data_dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind")
    .spawn()
    .expect("spawn");
    let addr = server.addr();

    // Known workload: one dataset (1 record, 1 blob), one job to done
    // (submitted + completed records, 1 body blob).
    let digest = register(addr, &csv);
    let id = submit(addr, &digest, "mechanism=promesse&alpha=150&seed=7");
    poll_done(addr, &id);

    let (status, _, body) = get(addr, "/v1/stats");
    assert_eq!(status, 200);
    let doc = parse_json(&body);
    let store = doc.get("store").expect("stats exposes a store object");
    let field = |key: &str| -> u64 {
        store
            .get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing store.{key}"))
    };
    assert_eq!(field("blobs"), 2, "dataset blob + result body blob");
    assert_eq!(
        field("journal_records"),
        3,
        "registered + submitted + completed"
    );
    assert_eq!(field("quarantined"), 0);
    let journal_bytes = field("journal_bytes");
    assert!(journal_bytes > 4, "magic plus three frames");
    let blob_bytes = field("blob_bytes");
    assert!(blob_bytes > 0);

    // `/metrics` reports the same numbers through the gauge handles.
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("UTF-8 metrics");
    let metric = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing metric {name}"))
    };
    assert_eq!(metric("mobipriv_store_blobs "), 2);
    assert_eq!(metric("mobipriv_store_blob_bytes "), blob_bytes);
    assert_eq!(metric("mobipriv_store_journal_bytes "), journal_bytes);
    assert_eq!(metric("mobipriv_store_quarantined "), 0);
    assert_eq!(metric("mobipriv_store_journal_records_total "), 3);
    assert_eq!(metric("mobipriv_store_blobs_recovered_total "), 0);
    assert_eq!(metric("mobipriv_store_quarantined_total "), 0);

    drop(server);
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn in_memory_server_reports_no_store() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServerConfig::default()
    })
    .expect("bind")
    .spawn()
    .expect("spawn");
    let (status, _, body) = get(server.addr(), "/v1/stats");
    assert_eq!(status, 200);
    assert!(
        parse_json(&body).get("store").is_none(),
        "no --data-dir, no store section"
    );
}
