//! Socket tests for the observability surface: `GET /metrics`,
//! `GET /v1/traces/:id`, the `x-mobipriv-trace` response header, and
//! the registry block embedded in `/v1/stats`.
//!
//! The contract under test is the determinism boundary: tracing and
//! metrics must never leak into response *bodies* — identical requests
//! stay byte-identical — while every response carries a distinct trace
//! id out of band, in a header.

use mobipriv_model::{write_csv, Dataset};
use mobipriv_obs::scrape;
use mobipriv_service::client::{header, request_full};
use mobipriv_service::{Server, ServerConfig, ServerHandle};
use mobipriv_synth::scenarios;

fn start() -> ServerHandle {
    Server::bind(ServerConfig::default())
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

fn csv_of(dataset: &Dataset) -> Vec<u8> {
    let mut out = Vec::new();
    write_csv(dataset, &mut out).unwrap();
    out
}

#[test]
fn identical_requests_share_bytes_but_not_trace_ids() {
    let body = csv_of(&scenarios::serving_day(6, 2).dataset);
    let server = start();
    let addr = server.addr();
    let target = "/v1/anonymize?mechanism=promesse&alpha=100&seed=3";

    let (status_a, headers_a, body_a) = request_full(addr, "POST", target, &body).unwrap();
    let (status_b, headers_b, body_b) = request_full(addr, "POST", target, &body).unwrap();
    assert_eq!((status_a, status_b), (200, 200));
    assert_eq!(body_a, body_b, "tracing leaked into the response body");

    let trace_a = header(&headers_a, "x-mobipriv-trace").expect("first trace header");
    let trace_b = header(&headers_b, "x-mobipriv-trace").expect("second trace header");
    assert_eq!(trace_a.len(), 16, "trace id is 16 hex chars: {trace_a}");
    assert!(trace_a.chars().all(|c| c.is_ascii_hexdigit()));
    assert_ne!(trace_a, trace_b, "every request gets its own trace id");
    assert_eq!(header(&headers_b, "x-mobipriv-cache"), Some("hit"));

    // The first request computed: its timeline covers the full stage
    // sequence. The replay was served from cache: no compute span.
    let (status, _, trace_doc) =
        request_full(addr, "GET", &format!("/v1/traces/{trace_a}"), b"").unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(trace_doc).unwrap();
    assert!(text.contains(&format!("\"id\":\"{trace_a}\"")), "{text}");
    for stage in ["parse", "digest", "cache_lookup", "compute", "serialize"] {
        assert!(text.contains(&format!("\"stage\":\"{stage}\"")), "{text}");
    }
    let (status, _, replay_doc) =
        request_full(addr, "GET", &format!("/v1/traces/{trace_b}"), b"").unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(replay_doc).unwrap();
    assert!(text.contains("\"stage\":\"cache_lookup\""), "{text}");
    assert!(!text.contains("\"stage\":\"compute\""), "{text}");

    let (status, _, _) = request_full(addr, "GET", "/v1/traces/deadbeef00000000", b"").unwrap();
    assert_eq!(status, 404, "unknown trace ids are 404");
    server.shutdown();
}

#[test]
fn metrics_endpoint_renders_parsable_prometheus_text() {
    let body = csv_of(&scenarios::serving_day(5, 2).dataset);
    let server = start();
    let addr = server.addr();
    let target = "/v1/anonymize?mechanism=promesse&alpha=100&seed=1";
    for _ in 0..3 {
        let (status, _, _) = request_full(addr, "POST", target, &body).unwrap();
        assert_eq!(status, 200);
    }
    let (status, _, _) = request_full(addr, "GET", "/nowhere", b"").unwrap();
    assert_eq!(status, 404);

    let (status, headers, text) = request_full(addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = String::from_utf8(text).expect("UTF-8 exposition");
    let parsed = scrape::parse(&text).expect("own scraper parses own rendering");

    assert_eq!(
        parsed.value("mobipriv_http_requests_total", &[("status", "200")]),
        Some(3.0)
    );
    assert_eq!(
        parsed.value("mobipriv_http_requests_total", &[("status", "404")]),
        Some(1.0)
    );
    assert_eq!(parsed.value("mobipriv_cache_misses_total", &[]), Some(1.0));
    assert_eq!(parsed.value("mobipriv_cache_hits_total", &[]), Some(2.0));
    assert_eq!(parsed.value("mobipriv_cache_entries", &[]), Some(1.0));
    assert_eq!(parsed.value("mobipriv_http_shed_total", &[]), Some(0.0));
    assert_eq!(parsed.value("mobipriv_jobs_failed_total", &[]), Some(0.0));
    // Per-stage latency histograms carry the served requests.
    for stage in ["parse", "cache_lookup", "write"] {
        let count = parsed
            .value("mobipriv_stage_seconds_count", &[("stage", stage)])
            .unwrap_or(0.0);
        assert!(count >= 3.0, "stage {stage} count {count}");
    }
    assert!(
        parsed
            .value("mobipriv_http_request_seconds_count", &[])
            .unwrap_or(0.0)
            >= 4.0
    );
    server.shutdown();
}

#[test]
fn stats_embeds_the_registry_and_stays_json() {
    let body = csv_of(&scenarios::serving_day(4, 2).dataset);
    let server = start();
    let addr = server.addr();
    let (status, _, _) =
        request_full(addr, "POST", "/v1/anonymize?mechanism=raw&seed=0", &body).unwrap();
    assert_eq!(status, 200);
    let (status, headers, stats) = request_full(addr, "GET", "/v1/stats", b"").unwrap();
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    let text = String::from_utf8(stats).unwrap();
    // The pre-existing flat counters survive unchanged…
    for field in ["\"computations\":", "\"cache_hits\":", "\"cache_misses\":"] {
        assert!(text.contains(field), "{text}");
    }
    // …and the full registry rides along under "metrics".
    assert!(text.contains("\"metrics\":{"), "{text}");
    assert!(
        text.contains("\"mobipriv_http_requests_total{status=200}\":"),
        "{text}"
    );
    assert!(text.contains("\"mobipriv_cache_misses_total\":1"), "{text}");
    server.shutdown();
}
