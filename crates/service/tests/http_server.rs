//! Integration tests over real sockets: boot the server on an ephemeral
//! port, speak HTTP/1.1 to it, and hold the responses to the service's
//! determinism contract — byte-identical to the batch [`Engine`].

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use mobipriv_core::{Engine, Mechanism};
use mobipriv_model::{read_bin, read_csv, write_bin, write_csv, write_ndjson, Dataset};
use mobipriv_service::registry::{build_mechanism, Params};
use mobipriv_service::{Server, ServerConfig, ServerHandle};
use mobipriv_synth::scenarios;

fn start(configure: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut config = ServerConfig::default();
    configure(&mut config);
    Server::bind(config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

/// Sends raw bytes, returns (status, lowercased headers, body).
fn exchange(addr: SocketAddr, request: &[u8]) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head/body separator");
    let head = std::str::from_utf8(&raw[..split]).expect("ASCII head");
    let body = raw[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    (status, headers, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, HashMap<String, String>, Vec<u8>) {
    // `connection: close` — these helpers read to EOF, and the server
    // keeps an HTTP/1.1 connection open for its idle timeout otherwise.
    exchange(
        addr,
        format!("GET {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, target: &str, body: &[u8]) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut request = format!(
        "POST {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(body);
    exchange(addr, &request)
}

fn csv_of(dataset: &Dataset) -> Vec<u8> {
    let mut out = Vec::new();
    write_csv(dataset, &mut out).unwrap();
    out
}

/// What the batch engine produces for this query string — the reference
/// every service response is compared against.
fn batch_reference(dataset: &Dataset, query: &[(&str, &str)], seed: u64) -> Vec<u8> {
    let pairs: Vec<(String, String)> = query
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    let mechanism: Box<dyn Mechanism> = build_mechanism(Params(&pairs)).expect("valid query");
    csv_of(&Engine::sequential().protect(mechanism.as_ref(), dataset, seed))
}

fn query_string(query: &[(&str, &str)], seed: u64) -> String {
    let mut s = String::new();
    for (k, v) in query {
        s.push_str(&format!("{k}={v}&"));
    }
    s.push_str(&format!("seed={seed}"));
    s
}

#[test]
fn healthz_and_mechanism_catalogue() {
    let server = start(|_| {});
    let addr = server.addr();
    let (status, headers, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, b"ready\n");
    assert_eq!(headers["content-type"], "text/plain");
    let (status, headers, body) = get(addr, "/v1/mechanisms");
    assert_eq!(status, 200);
    assert_eq!(headers["content-type"], "application/json");
    let text = String::from_utf8(body).unwrap();
    for name in ["promesse", "geoind", "mixzones", "kdelta", "pipeline"] {
        assert!(text.contains(name), "catalogue misses {name}");
    }
    server.shutdown();
}

#[test]
fn anonymize_is_bit_identical_to_the_batch_engine() {
    let workload = scenarios::serving_day(12, 3);
    let body = csv_of(&workload.dataset);
    // The service's input is the *body*: the reference is the batch
    // engine run on the same canonical parse of it.
    let canonical = read_csv(body.as_slice()).unwrap();
    let server = start(|_| {});
    let addr = server.addr();
    for (query, seed) in [
        (vec![("mechanism", "promesse"), ("alpha", "120")], 9u64),
        (vec![("mechanism", "geoind"), ("epsilon", "0.05")], 1),
        (vec![("mechanism", "pseudonymize")], 7),
        (vec![("mechanism", "raw")], 0),
    ] {
        let target = format!("/v1/anonymize?{}", query_string(&query, seed));
        let (status, headers, got) = post(addr, &target, &body);
        assert_eq!(status, 200, "{target}");
        assert_eq!(headers["content-type"], "text/csv");
        let expected = batch_reference(&canonical, &query, seed);
        assert_eq!(got, expected, "service response diverges for {target}");
        // Replaying the identical request reproduces the bytes.
        let (_, _, again) = post(addr, &target, &body);
        assert_eq!(again, got, "replay diverges for {target}");
    }
    server.shutdown();
}

#[test]
fn eight_concurrent_requests_stay_correct_and_isolated() {
    // More in-flight requests than workers, mixed mechanisms and seeds:
    // every response must still match its own batch reference.
    let workload = scenarios::serving_day(8, 5);
    let body = csv_of(&workload.dataset);
    let dataset = read_csv(body.as_slice()).unwrap();
    let server = start(|c| {
        c.workers = 3;
        c.queue_depth = 32;
    });
    let addr = server.addr();
    let queries: Vec<Vec<(&str, &str)>> = vec![
        vec![("mechanism", "promesse"), ("alpha", "100")],
        vec![("mechanism", "promesse"), ("alpha", "250")],
        vec![("mechanism", "geoind"), ("epsilon", "0.01")],
        vec![
            ("mechanism", "geoind"),
            ("epsilon", "0.1"),
            ("budget", "trace"),
        ],
        vec![("mechanism", "raw")],
        vec![("mechanism", "pseudonymize")],
        vec![("mechanism", "pseudonymize"), ("per", "trace")],
        vec![("mechanism", "grid"), ("cell", "300")],
        vec![("mechanism", "mixzones"), ("radius", "120")],
        vec![("mechanism", "kdelta"), ("k", "2"), ("delta", "250")],
    ];
    assert!(queries.len() >= 8);
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .enumerate()
            .map(|(i, query)| {
                let (dataset, body) = (&dataset, &body);
                scope.spawn(move || {
                    let seed = 40 + i as u64;
                    let target = format!("/v1/anonymize?{}", query_string(query, seed));
                    let (status, _, got) = post(addr, &target, body);
                    assert_eq!(status, 200, "{target}");
                    let expected = batch_reference(dataset, query, seed);
                    assert_eq!(got, expected, "concurrent response diverges for {target}");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("request thread panicked");
        }
    });
    server.shutdown();
}

#[test]
fn chunked_and_ndjson_bodies_match_fixed_length_csv() {
    let workload = scenarios::serving_day(5, 2);
    let csv = csv_of(&workload.dataset);
    let server = start(|_| {});
    let addr = server.addr();
    let target = "/v1/anonymize?mechanism=promesse&alpha=100&seed=4";
    let (status, _, fixed) = post(addr, target, &csv);
    assert_eq!(status, 200);

    // Same body, chunked framing with awkward chunk sizes.
    let mut request = format!(
        "POST {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\
         transfer-encoding: chunked\r\n\r\n"
    )
    .into_bytes();
    for chunk in csv.chunks(777) {
        request.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
        request.extend_from_slice(chunk);
        request.extend_from_slice(b"\r\n");
    }
    request.extend_from_slice(b"0\r\n\r\n");
    let (status, _, chunked) = exchange(addr, &request);
    assert_eq!(status, 200);
    assert_eq!(chunked, fixed, "chunked framing changed the release");

    // Same dataset as NDJSON.
    let mut ndjson = Vec::new();
    write_ndjson(&workload.dataset, &mut ndjson).unwrap();
    let mut request = format!(
        "POST {target}&format=ndjson HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\
         content-length: {}\r\n\r\n",
        ndjson.len()
    )
    .into_bytes();
    request.extend_from_slice(&ndjson);
    let (status, _, from_ndjson) = exchange(addr, &request);
    assert_eq!(status, 200);
    assert_eq!(from_ndjson, fixed, "ndjson ingestion changed the release");
    server.shutdown();
}

#[test]
fn bin_wire_format_round_trips_end_to_end() {
    let workload = scenarios::serving_day(5, 2);
    let csv = csv_of(&workload.dataset);
    // The Bin upload carries the *canonical parse* of the CSV, so both
    // uploads describe byte-for-byte the same dataset.
    let canonical = read_csv(csv.as_slice()).unwrap();
    let mut bin = Vec::new();
    write_bin(&canonical, &mut bin).unwrap();
    let server = start(|_| {});
    let addr = server.addr();

    // Format-independent digests: the Bin re-upload is idempotent.
    let (status, headers, _) = post(addr, "/v1/datasets", &csv);
    assert_eq!(status, 200);
    let digest = headers["x-mobipriv-digest"].clone();
    let (status, headers, body) = post(addr, "/v1/datasets?format=bin", &bin);
    assert_eq!(status, 200);
    assert_eq!(headers["x-mobipriv-digest"], digest, "bin digest diverges");
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains("exists"),
        "bin re-upload not idempotent: {text}"
    );

    // `format=bin` switches both directions; the release is the same —
    // re-rendering the Bin response as canonical CSV reproduces the CSV
    // response byte for byte.
    let target = "/v1/anonymize?mechanism=promesse&alpha=100&seed=4";
    let (status, _, from_csv) = post(addr, target, &csv);
    assert_eq!(status, 200);
    let (status, headers, from_bin) = post(addr, &format!("{target}&format=bin"), &bin);
    assert_eq!(status, 200);
    assert_eq!(headers["content-type"], "application/octet-stream");
    assert_eq!(&from_bin[..4], b"MPB1");
    let release = read_bin(from_bin.as_slice()).unwrap();
    let mut recanonicalized = Vec::new();
    write_csv(&release, &mut recanonicalized).unwrap();
    assert_eq!(recanonicalized, from_csv, "bin release diverges from csv");

    // Replaying the Bin request hits the bin-suffixed cache entry.
    let (_, headers, again) = post(addr, &format!("{target}&format=bin"), &bin);
    assert_eq!(again, from_bin);
    assert_eq!(headers["x-mobipriv-cache"], "hit");
    server.shutdown();
}

#[test]
fn utility_report_headers_are_present_on_request() {
    let workload = scenarios::serving_day(5, 2);
    let body = csv_of(&workload.dataset);
    let server = start(|_| {});
    let addr = server.addr();
    let (status, headers, _) = post(
        addr,
        "/v1/anonymize?mechanism=promesse&alpha=100&seed=1&report=1",
        &body,
    );
    assert_eq!(status, 200);
    for h in [
        "x-mobipriv-distortion-mean-m",
        "x-mobipriv-distortion-p95-m",
        "x-mobipriv-coverage-f1",
        "x-mobipriv-input-fixes",
        "x-mobipriv-output-fixes",
    ] {
        assert!(headers.contains_key(h), "missing header {h}: {headers:?}");
    }
    let mean: f64 = headers["x-mobipriv-distortion-mean-m"].parse().unwrap();
    assert!(mean.is_finite() && mean >= 0.0);
    // Without report=1 the metric headers are absent.
    let (_, headers, _) = post(addr, "/v1/anonymize?mechanism=raw", &body);
    assert!(!headers.contains_key("x-mobipriv-distortion-mean-m"));
    server.shutdown();
}

#[test]
fn expect_100_continue_gets_an_interim_response() {
    // curl sends `Expect: 100-continue` for any body over 1 KiB and
    // stalls ~1 s unless the server answers the interim response.
    let workload = scenarios::serving_day(3, 1);
    let csv = csv_of(&workload.dataset);
    let server = start(|_| {});
    let mut request = format!(
        "POST /v1/anonymize?mechanism=raw&seed=1 HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\
         expect: 100-continue\r\ncontent-length: {}\r\n\r\n",
        csv.len()
    )
    .into_bytes();
    request.extend_from_slice(&csv);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(&request).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 100 Continue\r\n\r\n"),
        "no interim response: {}",
        &text[..text.len().min(80)]
    );
    assert!(text.contains("HTTP/1.1 200 OK"), "no final response");
    assert!(text.contains("user,trace,lat,lng,time"), "no CSV back");
    server.shutdown();
}

#[test]
fn errors_map_to_proper_status_codes() {
    let server = start(|c| c.max_body_bytes = 1024);
    let addr = server.addr();

    let (status, _, body) = post(addr, "/v1/anonymize?mechanism=warp-drive", b"");
    assert_eq!(status, 400);
    assert!(String::from_utf8(body)
        .unwrap()
        .contains("unknown mechanism"));

    let (status, _, body) = post(
        addr,
        "/v1/anonymize?mechanism=raw",
        b"user,trace,lat,lng,time\n1,0,95.0,5.0,0\n",
    );
    assert_eq!(status, 400);
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains("line 2") && text.contains("latitude"),
        "{text}"
    );

    let (status, _, _) = get(addr, "/v1/anonymize");
    assert_eq!(status, 405);
    let (status, headers, _) = exchange(addr, b"DELETE /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
    assert_eq!(status, 405);
    assert_eq!(headers["allow"], "GET");

    let (status, _, _) = get(addr, "/v2/psychic-anonymizer");
    assert_eq!(status, 404);

    let oversized = vec![b'1'; 4096];
    let (status, _, _) = post(addr, "/v1/anonymize?mechanism=raw", &oversized);
    assert_eq!(status, 413);

    let (status, _, _) = exchange(addr, b"NOT-HTTP\r\n\r\n");
    assert_eq!(status, 400);
    server.shutdown();
}

#[test]
fn shutdown_is_graceful_and_frees_the_port() {
    let server = start(|_| {});
    let addr = server.addr();
    let (status, _, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    server.shutdown();
    // The listener is gone: connecting now fails or yields no response.
    match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut stream) => {
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
            let mut out = Vec::new();
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            let n = stream.read_to_end(&mut out).unwrap_or(0);
            assert_eq!(n, 0, "server answered after shutdown: {out:?}");
        }
    }
}

#[test]
fn evaluate_endpoint_returns_the_matrix_report() {
    let server = start(|_| {});
    let addr = server.addr();

    // One filtered cell: fast, and exactly what the batch harness
    // computes for the same plan.
    let (status, headers, body) = get(
        addr,
        "/v1/evaluate?scenario=crossing_paths&mechanism=promesse_a100",
    );
    assert_eq!(status, 200);
    assert_eq!(headers["content-type"], "application/json");
    assert_eq!(headers["x-mobipriv-eval-cells"], "1");
    let text = String::from_utf8(body).expect("UTF-8 JSON");
    let report = mobipriv_eval::EvalReport::from_json(&text).expect("parseable report");
    assert_eq!(report.schema_version, mobipriv_eval::SCHEMA_VERSION);
    assert_eq!(report.cells.len(), 1);
    assert_eq!(report.cells[0].scenario, "crossing_paths");
    assert_eq!(report.cells[0].mechanism, "promesse_a100");

    let plan = mobipriv_eval::EvalPlan::smoke()
        .with_scenario("crossing_paths")
        .unwrap()
        .with_mechanism("promesse_a100")
        .unwrap();
    let reference = mobipriv_eval::evaluate(&plan);
    assert_eq!(text, reference.to_json(), "service and CLI reports agree");
    server.shutdown();
}

#[test]
fn evaluate_endpoint_is_deterministic_and_honours_filters() {
    let server = start(|_| {});
    let addr = server.addr();
    let target = "/v1/evaluate?scenario=crossing_paths&mechanism=raw&seed=7";
    let (status_a, _, body_a) = get(addr, target);
    let (status_b, _, body_b) = get(addr, target);
    assert_eq!((status_a, status_b), (200, 200));
    assert_eq!(body_a, body_b, "same plan, byte-identical report");
    let report =
        mobipriv_eval::EvalReport::from_json(std::str::from_utf8(&body_a).unwrap()).unwrap();
    assert_eq!(report.cells[0].seed, 7);

    // A different seed changes the randomized scenario content.
    let (_, _, other_seed) = get(
        addr,
        "/v1/evaluate?scenario=crossing_paths&mechanism=raw&seed=8",
    );
    assert_ne!(body_a, other_seed);
    server.shutdown();
}

#[test]
fn evaluate_endpoint_exposes_timings_on_request() {
    let server = start(|_| {});
    let addr = server.addr();
    let base = "/v1/evaluate?scenario=crossing_paths&mechanism=raw";
    let (status, _, plain) = get(addr, base);
    assert_eq!(status, 200);
    assert!(!String::from_utf8(plain).unwrap().contains("wall_ms"));
    let (status, _, timed) = get(addr, &format!("{base}&timings=1"));
    assert_eq!(status, 200);
    let text = String::from_utf8(timed).unwrap();
    assert!(text.contains("\"wall_ms\":"), "{text}");
    let report = mobipriv_eval::EvalReport::from_json(&text).unwrap();
    assert!(report.cells[0].wall_ms > 0.0, "timing recovered from JSON");
    server.shutdown();
}

#[test]
fn evaluate_endpoint_rejects_bad_parameters() {
    let server = start(|_| {});
    let addr = server.addr();
    for target in [
        "/v1/evaluate?scenario=atlantis",
        "/v1/evaluate?mechanism=warp-drive",
        "/v1/evaluate?preset=gigantic",
        "/v1/evaluate?seed=banana",
        "/v1/evaluate?timings=yes",
    ] {
        let (status, _, body) = get(addr, target);
        assert_eq!(status, 400, "{target}");
        assert!(!body.is_empty(), "{target} has an explanatory body");
    }
    let (status, headers, _) = post(addr, "/v1/evaluate", b"");
    assert_eq!(status, 405);
    assert_eq!(headers["allow"], "GET");
    server.shutdown();
}

// --- keep-alive connection semantics ---------------------------------------

/// Reads exactly one `Content-Length`-framed response off an open
/// socket, leaving any pipelined follow-up bytes unread. The helpers
/// above read to EOF instead, which only works for `connection: close`.
fn read_framed(stream: &mut TcpStream) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    while !raw.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("read response head");
        assert!(n > 0, "EOF inside a response head: {raw:?}");
        raw.push(byte[0]);
    }
    let head = std::str::from_utf8(&raw[..raw.len() - 4]).expect("ASCII head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers: HashMap<String, String> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    let length: usize = headers["content-length"].parse().expect("content-length");
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("read framed body");
    (status, headers, body)
}

fn connect_keep_alive(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

#[test]
fn keep_alive_reuses_one_socket_and_stays_byte_identical() {
    let server = start(|_| {});
    let addr = server.addr();
    let csv = b"user,trace,lat,lng,time\n1,0,48.8566,2.3522,0\n1,0,48.8570,2.3530,30\n";

    let mut stream = connect_keep_alive(addr);
    let mut reused = Vec::new();
    for _ in 0..3 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
        let (status, headers, body) = read_framed(&mut stream);
        assert_eq!(status, 200);
        assert_eq!(headers["connection"], "keep-alive");
        reused.push(body);

        let mut request = format!(
            "POST /v1/anonymize?mechanism=promesse&alpha=100&seed=5 HTTP/1.1\r\n\
             host: t\r\ncontent-length: {}\r\n\r\n",
            csv.len()
        )
        .into_bytes();
        request.extend_from_slice(csv);
        stream.write_all(&request).unwrap();
        let (status, headers, body) = read_framed(&mut stream);
        assert_eq!(status, 200);
        assert_eq!(headers["connection"], "keep-alive");
        reused.push(body);
    }

    // The same six exchanges over fresh close-framed connections yield
    // the same bytes: reuse changes framing, never content.
    let mut fresh = Vec::new();
    for _ in 0..3 {
        fresh.push(get(addr, "/healthz").2);
        fresh.push(
            post(
                addr,
                "/v1/anonymize?mechanism=promesse&alpha=100&seed=5",
                csv,
            )
            .2,
        );
    }
    assert_eq!(reused, fresh);
    server.shutdown();
}

#[test]
fn connection_close_is_honoured_with_a_close_response_and_eof() {
    let server = start(|_| {});
    let addr = server.addr();
    let mut stream = connect_keep_alive(addr);
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
        .unwrap();
    let (status, headers, body) = read_framed(&mut stream);
    assert_eq!((status, body.as_slice()), (200, &b"ready\n"[..]));
    assert_eq!(headers["connection"], "close");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("clean EOF");
    assert!(rest.is_empty(), "bytes after a close response: {rest:?}");
    server.shutdown();
}

#[test]
fn idle_deadline_reclaims_parked_connections() {
    let server = start(|config| config.idle_timeout = Duration::from_millis(200));
    let addr = server.addr();
    let mut stream = connect_keep_alive(addr);
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (status, headers, _) = read_framed(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(headers["connection"], "keep-alive");
    // Park without sending another request: the server must close the
    // socket cleanly (EOF, no error bytes) once the idle deadline fires.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("clean EOF on idle");
    assert!(rest.is_empty(), "bytes after idle close: {rest:?}");
    // The worker is free again: a fresh connection is served promptly.
    let (status, _, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_slice()), (200, &b"ready\n"[..]));
    server.shutdown();
}

#[test]
fn max_requests_per_conn_caps_a_connection_with_a_close_response() {
    let server = start(|config| config.max_requests_per_conn = 2);
    let addr = server.addr();
    let mut stream = connect_keep_alive(addr);
    for expected in ["keep-alive", "close"] {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
        let (status, headers, _) = read_framed(&mut stream);
        assert_eq!(status, 200);
        assert_eq!(headers["connection"], expected);
    }
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("clean EOF at the cap");
    assert!(rest.is_empty(), "bytes after the request cap: {rest:?}");
    server.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = start(|_| {});
    let addr = server.addr();
    let mut stream = connect_keep_alive(addr);
    // Both requests land in the connection's buffer before the first
    // response is written; the persistent reader must not drop the
    // second one between requests.
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n\
              GET /v1/mechanisms HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
        )
        .unwrap();
    let (status, headers, body) = read_framed(&mut stream);
    assert_eq!((status, body.as_slice()), (200, &b"ready\n"[..]));
    assert_eq!(headers["connection"], "keep-alive");
    let (status, headers, body) = read_framed(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(headers["connection"], "close");
    assert!(String::from_utf8(body).unwrap().contains("promesse"));
    server.shutdown();
}
