//! The mechanism registry: maps `?mechanism=…` query parameters onto
//! `mobipriv_core` mechanism instances, and renders the catalogue for
//! `GET /v1/mechanisms`.
//!
//! Every knob is a plain query parameter with a documented default, so
//! the whole mechanism matrix is reachable from `curl` without a
//! request body schema. Parameter validation errors surface as 400s
//! with the offending name and value.

use mobipriv_core::{
    GeoInd, GridGeneralization, Identity, KDelta, Mechanism, MixZoneConfig, MixZones, NoiseBudget,
    Pipeline, Promesse, Pseudonymize,
};
use mobipriv_geo::Seconds;

use crate::ServiceError;

/// Catalogue entry for one mechanism, as listed by `GET /v1/mechanisms`.
#[derive(Debug, Clone, Copy)]
pub struct MechanismInfo {
    /// The `mechanism=` value selecting it.
    pub name: &'static str,
    /// Human-readable parameter summary (`name=default` pairs).
    pub params: &'static str,
    /// Whether the engine can fan its kernel out per trace.
    pub per_trace: bool,
    /// One-line description.
    pub description: &'static str,
}

/// The full mechanism matrix the service exposes.
pub const MECHANISMS: &[MechanismInfo] = &[
    MechanismInfo {
        name: "raw",
        params: "",
        per_trace: true,
        description: "identity: publish unchanged (baseline)",
    },
    MechanismInfo {
        name: "pseudonymize",
        params: "per=user|trace (default user)",
        per_trace: true,
        description: "fresh random pseudonyms, locations untouched",
    },
    MechanismInfo {
        name: "promesse",
        params: "alpha=100 (meters)",
        per_trace: true,
        description: "speed smoothing: constant-speed re-sampling hides stops (the paper's step 1)",
    },
    MechanismInfo {
        name: "geoind",
        params: "epsilon=0.01 (1/m), budget=point|trace (default point)",
        per_trace: true,
        description: "geo-indistinguishability via planar Laplace noise",
    },
    MechanismInfo {
        name: "grid",
        params: "cell=250 (meters), time_round=0 (seconds, 0 = off)",
        // The grid frame is anchored at the dataset bounding box, so the
        // mechanism is dataset-level despite its per-fix arithmetic.
        per_trace: false,
        description: "spatial (and optional temporal) generalization to a grid",
    },
    MechanismInfo {
        name: "mixzones",
        params: "radius=100 (meters), window=300 (seconds)",
        per_trace: false,
        description: "identifier swapping in natural mix-zones (the paper's step 2)",
    },
    MechanismInfo {
        name: "kdelta",
        params: "k=2, delta=200 (meters)",
        per_trace: false,
        description: "(k, delta)-anonymity by trajectory clustering (Wait4Me-style)",
    },
    MechanismInfo {
        name: "pipeline",
        params: "alpha=100 (meters), radius=100 (meters), window=300 (seconds)",
        per_trace: false,
        description: "the paper's full mechanism: promesse then mix-zone swapping",
    },
];

/// Typed access to decoded query parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params<'a>(pub &'a [(String, String)]);

impl<'a> Params<'a> {
    /// The raw value of `name`, if present. The result borrows from the
    /// underlying query slice (not this wrapper), so it outlives
    /// temporary `Params` values.
    pub fn get(&self, name: &str) -> Option<&'a str> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses `name` as `T`, falling back to `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::BadRequest`] naming the parameter when
    /// the value does not parse.
    pub fn parse_or<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, ServiceError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse::<T>().map_err(|_| {
                ServiceError::BadRequest(format!("invalid value `{raw}` for parameter `{name}`"))
            }),
        }
    }
}

/// Builds the mechanism selected by `mechanism=` plus its parameters.
///
/// # Errors
///
/// Returns [`ServiceError::BadRequest`] when the parameter is missing,
/// names an unknown mechanism, or carries invalid values (the
/// `CoreError` from the mechanism constructor is passed through).
pub fn build_mechanism(params: Params<'_>) -> Result<Box<dyn Mechanism>, ServiceError> {
    let name = params
        .get("mechanism")
        .ok_or_else(|| ServiceError::BadRequest("missing required parameter `mechanism`".into()))?;
    match name {
        "raw" | "identity" => Ok(Box::new(Identity)),
        "pseudonymize" => match params.get("per").unwrap_or("user") {
            "user" => Ok(Box::new(Pseudonymize::new())),
            "trace" => Ok(Box::new(Pseudonymize::new().per_trace())),
            other => Err(ServiceError::BadRequest(format!(
                "invalid value `{other}` for parameter `per` (expected user|trace)"
            ))),
        },
        "promesse" => {
            let alpha = params.parse_or("alpha", 100.0)?;
            Ok(Box::new(Promesse::new(alpha)?))
        }
        "geoind" => {
            let epsilon = params.parse_or("epsilon", 0.01)?;
            let mechanism = GeoInd::new(epsilon)?;
            match params.get("budget").unwrap_or("point") {
                "point" => Ok(Box::new(mechanism.with_budget(NoiseBudget::PerPoint))),
                "trace" => Ok(Box::new(mechanism.with_budget(NoiseBudget::PerTrace))),
                other => Err(ServiceError::BadRequest(format!(
                    "invalid value `{other}` for parameter `budget` (expected point|trace)"
                ))),
            }
        }
        "grid" => {
            let cell = params.parse_or("cell", 250.0)?;
            let time_round: f64 = params.parse_or("time_round", 0.0)?;
            if !time_round.is_finite() || time_round < 0.0 {
                return Err(ServiceError::BadRequest(format!(
                    "invalid value `{time_round}` for parameter `time_round` \
                     (expected seconds >= 0; 0 disables rounding)"
                )));
            }
            let mechanism = GridGeneralization::new(cell)?;
            if time_round > 0.0 {
                Ok(Box::new(
                    mechanism.with_time_rounding(Seconds::new(time_round))?,
                ))
            } else {
                Ok(Box::new(mechanism))
            }
        }
        "mixzones" => Ok(Box::new(MixZones::new(mixzone_config(&params)?)?)),
        "kdelta" => {
            let k = params.parse_or("k", 2usize)?;
            let delta = params.parse_or("delta", 200.0)?;
            Ok(Box::new(KDelta::new(k, delta)?))
        }
        "pipeline" => {
            let alpha = params.parse_or("alpha", 100.0)?;
            Ok(Box::new(Pipeline::new(alpha, mixzone_config(&params)?)?))
        }
        other => Err(ServiceError::BadRequest(format!(
            "unknown mechanism `{other}` (see GET /v1/mechanisms)"
        ))),
    }
}

fn mixzone_config(params: &Params<'_>) -> Result<MixZoneConfig, ServiceError> {
    let defaults = MixZoneConfig::default();
    Ok(MixZoneConfig {
        radius_m: params.parse_or("radius", defaults.radius_m)?,
        zone_window: Seconds::new(params.parse_or("window", defaults.zone_window.get())?),
        ..defaults
    })
}

/// Renders the catalogue as a JSON array (all content is static, so the
/// document is assembled by hand — no serializer in the dependency
/// tree).
pub fn mechanisms_json() -> String {
    let mut out = String::from("[\n");
    for (i, m) in MECHANISMS.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\":\"{}\",\"params\":\"{}\",\"per_trace\":{},\"description\":\"{}\"}}{}\n",
            m.name,
            m.params,
            m.per_trace,
            m.description,
            if i + 1 < MECHANISMS.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn builds_every_catalogued_mechanism_with_defaults() {
        for info in MECHANISMS {
            let q = params(&[("mechanism", info.name)]);
            let mechanism = build_mechanism(Params(&q))
                .unwrap_or_else(|e| panic!("mechanism `{}` failed to build: {e}", info.name));
            assert_eq!(
                mechanism.as_trace_kernel().is_some(),
                info.per_trace,
                "per_trace flag for `{}` disagrees with the mechanism",
                info.name
            );
        }
    }

    #[test]
    fn parameters_reach_the_mechanism() {
        let q = params(&[("mechanism", "promesse"), ("alpha", "250")]);
        assert!(build_mechanism(Params(&q)).unwrap().name().contains("250"));
        let q = params(&[
            ("mechanism", "geoind"),
            ("epsilon", "0.5"),
            ("budget", "trace"),
        ]);
        assert!(build_mechanism(Params(&q))
            .unwrap()
            .name()
            .contains("trace"));
        let q = params(&[("mechanism", "kdelta"), ("k", "5"), ("delta", "400")]);
        assert!(build_mechanism(Params(&q)).unwrap().name().contains("k=5"));
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        for q in [
            params(&[]),
            params(&[("mechanism", "nope")]),
            params(&[("mechanism", "promesse"), ("alpha", "banana")]),
            params(&[("mechanism", "promesse"), ("alpha", "-5")]),
            params(&[("mechanism", "pseudonymize"), ("per", "day")]),
            params(&[("mechanism", "geoind"), ("budget", "yearly")]),
            params(&[("mechanism", "grid"), ("time_round", "-60")]),
            params(&[("mechanism", "grid"), ("time_round", "NaN")]),
        ] {
            let err = match build_mechanism(Params(&q)) {
                Err(e) => e,
                Ok(m) => panic!("{q:?} unexpectedly built `{}`", m.name()),
            };
            assert_eq!(err.status().0, 400, "{q:?} -> {err}");
        }
    }

    #[test]
    fn catalogue_json_is_complete() {
        let json = mechanisms_json();
        for m in MECHANISMS {
            assert!(json.contains(m.name));
        }
        assert_eq!(json.matches("\"name\"").count(), MECHANISMS.len());
    }
}
