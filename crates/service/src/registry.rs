//! The mechanism registry: maps `?mechanism=…` query parameters onto
//! `mobipriv_core` mechanism instances, and renders the catalogue for
//! `GET /v1/mechanisms`.
//!
//! Every knob is a plain query parameter with a documented default, so
//! the whole mechanism matrix is reachable from `curl` without a
//! request body schema. Parameter validation errors surface as 400s
//! with the offending name and value.

use mobipriv_core::{
    GeoInd, GridGeneralization, Identity, KDelta, Mechanism, MixZoneConfig, MixZones, NoiseBudget,
    Pipeline, Promesse, Pseudonymize,
};
use mobipriv_geo::Seconds;

use crate::ServiceError;

/// Catalogue entry for one mechanism, as listed by `GET /v1/mechanisms`.
#[derive(Debug, Clone, Copy)]
pub struct MechanismInfo {
    /// The `mechanism=` value selecting it.
    pub name: &'static str,
    /// Human-readable parameter summary (`name=default` pairs).
    pub params: &'static str,
    /// Whether the engine can fan its kernel out per trace.
    pub per_trace: bool,
    /// One-line description.
    pub description: &'static str,
}

/// The full mechanism matrix the service exposes.
pub const MECHANISMS: &[MechanismInfo] = &[
    MechanismInfo {
        name: "raw",
        params: "",
        per_trace: true,
        description: "identity: publish unchanged (baseline)",
    },
    MechanismInfo {
        name: "pseudonymize",
        params: "per=user|trace (default user)",
        per_trace: true,
        description: "fresh random pseudonyms, locations untouched",
    },
    MechanismInfo {
        name: "promesse",
        params: "alpha=100 (meters)",
        per_trace: true,
        description: "speed smoothing: constant-speed re-sampling hides stops (the paper's step 1)",
    },
    MechanismInfo {
        name: "geoind",
        params: "epsilon=0.01 (1/m), budget=point|trace (default point)",
        per_trace: true,
        description: "geo-indistinguishability via planar Laplace noise",
    },
    MechanismInfo {
        name: "grid",
        params: "cell=250 (meters), time_round=0 (seconds, 0 = off)",
        // The grid frame is anchored at the dataset bounding box, so the
        // mechanism is dataset-level despite its per-fix arithmetic.
        per_trace: false,
        description: "spatial (and optional temporal) generalization to a grid",
    },
    MechanismInfo {
        name: "mixzones",
        params: "radius=100 (meters), window=300 (seconds)",
        per_trace: false,
        description: "identifier swapping in natural mix-zones (the paper's step 2)",
    },
    MechanismInfo {
        name: "kdelta",
        params: "k=2, delta=200 (meters)",
        per_trace: false,
        description: "(k, delta)-anonymity by trajectory clustering (Wait4Me-style)",
    },
    MechanismInfo {
        name: "pipeline",
        params: "alpha=100 (meters), radius=100 (meters), window=300 (seconds)",
        per_trace: false,
        description: "the paper's full mechanism: promesse then mix-zone swapping",
    },
];

/// Typed access to decoded query parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params<'a>(pub &'a [(String, String)]);

impl<'a> Params<'a> {
    /// The raw value of `name`, if present. The result borrows from the
    /// underlying query slice (not this wrapper), so it outlives
    /// temporary `Params` values.
    pub fn get(&self, name: &str) -> Option<&'a str> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses `name` as `T`, falling back to `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::BadRequest`] naming the parameter when
    /// the value does not parse.
    pub fn parse_or<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, ServiceError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse::<T>().map_err(|_| {
                ServiceError::BadRequest(format!("invalid value `{raw}` for parameter `{name}`"))
            }),
        }
    }
}

/// Builds the mechanism selected by `mechanism=` plus its parameters.
///
/// # Errors
///
/// Returns [`ServiceError::BadRequest`] when the parameter is missing,
/// names an unknown mechanism, or carries invalid values (the
/// `CoreError` from the mechanism constructor is passed through).
pub fn build_mechanism(params: Params<'_>) -> Result<Box<dyn Mechanism>, ServiceError> {
    resolve_mechanism(params).map(|r| r.mechanism)
}

/// A mechanism together with the canonical form of its parameters —
/// the piece of the result-cache key that identifies *what* runs.
pub struct ResolvedMechanism {
    /// The constructed mechanism.
    pub mechanism: Box<dyn Mechanism>,
    /// Canonical parameter serialization: mechanism name followed by
    /// every knob in a fixed order with its *resolved* value (defaults
    /// made explicit, numbers printed through Rust's shortest
    /// round-trip `Display`). Two queries get the same canonical string
    /// iff they build the same mechanism — `alpha=100`, `alpha=100.0`
    /// and an omitted default all canonicalize to `alpha=100` — and
    /// distinct resolved parameters always produce distinct strings
    /// (`Display` on `f64`/`usize` is injective), which is what makes
    /// the string safe to key a content-addressed cache with. The
    /// injectivity proptests in `tests/properties_service.rs` pin this.
    pub canonical: String,
}

/// Builds the mechanism *and* its canonical parameter string.
///
/// # Errors
///
/// Same surface as [`build_mechanism`].
pub fn resolve_mechanism(params: Params<'_>) -> Result<ResolvedMechanism, ServiceError> {
    let name = params
        .get("mechanism")
        .ok_or_else(|| ServiceError::BadRequest("missing required parameter `mechanism`".into()))?;
    let (mechanism, canonical): (Box<dyn Mechanism>, String) = match name {
        "raw" | "identity" => (Box::new(Identity), "raw".to_owned()),
        "pseudonymize" => {
            let per = match params.get("per").unwrap_or("user") {
                "user" => "user",
                "trace" => "trace",
                other => {
                    return Err(ServiceError::BadRequest(format!(
                        "invalid value `{other}` for parameter `per` (expected user|trace)"
                    )))
                }
            };
            let mechanism = if per == "trace" {
                Pseudonymize::new().per_trace()
            } else {
                Pseudonymize::new()
            };
            (Box::new(mechanism), format!("pseudonymize per={per}"))
        }
        "promesse" => {
            let alpha: f64 = params.parse_or("alpha", 100.0)?;
            (
                Box::new(Promesse::new(alpha)?),
                format!("promesse alpha={alpha}"),
            )
        }
        "geoind" => {
            let epsilon: f64 = params.parse_or("epsilon", 0.01)?;
            let mechanism = GeoInd::new(epsilon)?;
            let (mechanism, budget): (Box<dyn Mechanism>, &str) =
                match params.get("budget").unwrap_or("point") {
                    "point" => (
                        Box::new(mechanism.with_budget(NoiseBudget::PerPoint)),
                        "point",
                    ),
                    "trace" => (
                        Box::new(mechanism.with_budget(NoiseBudget::PerTrace)),
                        "trace",
                    ),
                    other => {
                        return Err(ServiceError::BadRequest(format!(
                            "invalid value `{other}` for parameter `budget` (expected point|trace)"
                        )))
                    }
                };
            (
                mechanism,
                format!("geoind epsilon={epsilon} budget={budget}"),
            )
        }
        "grid" => {
            let cell: f64 = params.parse_or("cell", 250.0)?;
            let time_round: f64 = params.parse_or("time_round", 0.0)?;
            if !time_round.is_finite() || time_round < 0.0 {
                return Err(ServiceError::BadRequest(format!(
                    "invalid value `{time_round}` for parameter `time_round` \
                     (expected seconds >= 0; 0 disables rounding)"
                )));
            }
            let mechanism = GridGeneralization::new(cell)?;
            let mechanism: Box<dyn Mechanism> = if time_round > 0.0 {
                Box::new(mechanism.with_time_rounding(Seconds::new(time_round))?)
            } else {
                Box::new(mechanism)
            };
            (
                mechanism,
                format!("grid cell={cell} time_round={time_round}"),
            )
        }
        "mixzones" => {
            let config = mixzone_config(&params)?;
            let canonical = format!(
                "mixzones radius={} window={}",
                config.radius_m,
                config.zone_window.get()
            );
            (Box::new(MixZones::new(config)?), canonical)
        }
        "kdelta" => {
            let k: usize = params.parse_or("k", 2usize)?;
            let delta: f64 = params.parse_or("delta", 200.0)?;
            (
                Box::new(KDelta::new(k, delta)?),
                format!("kdelta k={k} delta={delta}"),
            )
        }
        "pipeline" => {
            let alpha: f64 = params.parse_or("alpha", 100.0)?;
            let config = mixzone_config(&params)?;
            let canonical = format!(
                "pipeline alpha={alpha} radius={} window={}",
                config.radius_m,
                config.zone_window.get()
            );
            (Box::new(Pipeline::new(alpha, config)?), canonical)
        }
        other => {
            return Err(ServiceError::BadRequest(format!(
                "unknown mechanism `{other}` (see GET /v1/mechanisms)"
            )))
        }
    };
    Ok(ResolvedMechanism {
        mechanism,
        canonical,
    })
}

fn mixzone_config(params: &Params<'_>) -> Result<MixZoneConfig, ServiceError> {
    let defaults = MixZoneConfig::default();
    Ok(MixZoneConfig {
        radius_m: params.parse_or("radius", defaults.radius_m)?,
        zone_window: Seconds::new(params.parse_or("window", defaults.zone_window.get())?),
        ..defaults
    })
}

/// Renders the catalogue as a JSON array (all content is static, so the
/// document is assembled by hand — no serializer in the dependency
/// tree).
pub fn mechanisms_json() -> String {
    let mut out = String::from("[\n");
    for (i, m) in MECHANISMS.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\":\"{}\",\"params\":\"{}\",\"per_trace\":{},\"description\":\"{}\"}}{}\n",
            m.name,
            m.params,
            m.per_trace,
            m.description,
            if i + 1 < MECHANISMS.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn builds_every_catalogued_mechanism_with_defaults() {
        for info in MECHANISMS {
            let q = params(&[("mechanism", info.name)]);
            let mechanism = build_mechanism(Params(&q))
                .unwrap_or_else(|e| panic!("mechanism `{}` failed to build: {e}", info.name));
            assert_eq!(
                mechanism.as_trace_kernel().is_some(),
                info.per_trace,
                "per_trace flag for `{}` disagrees with the mechanism",
                info.name
            );
        }
    }

    #[test]
    fn parameters_reach_the_mechanism() {
        let q = params(&[("mechanism", "promesse"), ("alpha", "250")]);
        assert!(build_mechanism(Params(&q)).unwrap().name().contains("250"));
        let q = params(&[
            ("mechanism", "geoind"),
            ("epsilon", "0.5"),
            ("budget", "trace"),
        ]);
        assert!(build_mechanism(Params(&q))
            .unwrap()
            .name()
            .contains("trace"));
        let q = params(&[("mechanism", "kdelta"), ("k", "5"), ("delta", "400")]);
        assert!(build_mechanism(Params(&q)).unwrap().name().contains("k=5"));
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        for q in [
            params(&[]),
            params(&[("mechanism", "nope")]),
            params(&[("mechanism", "promesse"), ("alpha", "banana")]),
            params(&[("mechanism", "promesse"), ("alpha", "-5")]),
            params(&[("mechanism", "pseudonymize"), ("per", "day")]),
            params(&[("mechanism", "geoind"), ("budget", "yearly")]),
            params(&[("mechanism", "grid"), ("time_round", "-60")]),
            params(&[("mechanism", "grid"), ("time_round", "NaN")]),
        ] {
            let err = match build_mechanism(Params(&q)) {
                Err(e) => e,
                Ok(m) => panic!("{q:?} unexpectedly built `{}`", m.name()),
            };
            assert_eq!(err.status().0, 400, "{q:?} -> {err}");
        }
    }

    #[test]
    fn canonical_params_resolve_defaults_and_numeric_variants() {
        // Omitted default, explicit default, and a numeric spelling
        // variant all canonicalize identically…
        let forms = [
            params(&[("mechanism", "promesse")]),
            params(&[("mechanism", "promesse"), ("alpha", "100")]),
            params(&[("mechanism", "promesse"), ("alpha", "100.0")]),
        ];
        let canon: Vec<String> = forms
            .iter()
            .map(|q| resolve_mechanism(Params(q)).unwrap().canonical)
            .collect();
        assert_eq!(canon[0], "promesse alpha=100");
        assert!(canon.iter().all(|c| c == &canon[0]), "{canon:?}");
        // …while a genuinely different value produces a different string.
        let q = params(&[("mechanism", "promesse"), ("alpha", "100.5")]);
        assert_eq!(
            resolve_mechanism(Params(&q)).unwrap().canonical,
            "promesse alpha=100.5"
        );
        // Every catalogued mechanism has a canonical form that starts
        // with its name (the cross-mechanism injectivity anchor).
        for info in MECHANISMS {
            let q = params(&[("mechanism", info.name)]);
            let canonical = resolve_mechanism(Params(&q)).unwrap().canonical;
            assert!(canonical.starts_with(info.name), "{canonical}");
        }
    }

    #[test]
    fn catalogue_json_is_complete() {
        let json = mechanisms_json();
        for m in MECHANISMS {
            assert!(json.contains(m.name));
        }
        assert_eq!(json.matches("\"name\"").count(), MECHANISMS.len());
    }
}
