//! A minimal blocking HTTP/1.1 client for the service's own tooling —
//! `mobipriv-loadgen`, the perf bench, the shard router's upstream leg
//! and the smoke harnesses all speak to the server through this one
//! implementation instead of carrying private copies of the
//! request/parse logic.
//!
//! Two shapes: the free functions ([`request`], [`request_full`]) send
//! `Connection: close` and pay a fresh TCP connection per request;
//! [`Connection`] keeps one socket open and frames responses by
//! `Content-Length`, so warm loops reuse the connection (and it
//! transparently reconnects when the server closes — idle deadline,
//! request cap, restart). Fixed-length bodies only, plus a deliberately
//! tiny JSON field scraper for the flat status documents the API
//! returns — full documents go through [`mobipriv_eval::Json`] instead.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Response header pairs, names lowercased — see [`request_full`].
pub type Headers = Vec<(String, String)>;

/// Default per-read timeout for [`request`]/[`request_full`]. Callers
/// with tighter latency expectations (the load generator's soak
/// assertions, the resilience tests) pass their own via
/// [`request_with_timeout`] instead of inheriting this worst-case
/// ceiling.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(120);

/// Sends one request over a fresh connection; returns `(status, body)`.
///
/// # Errors
///
/// Propagates connect/read/write failures; a response without a parsable
/// status line reports status `0` rather than erroring.
pub fn request<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    target: &str,
    body: &[u8],
) -> std::io::Result<(u16, Vec<u8>)> {
    let (status, _, body) = request_full(addr, method, target, body)?;
    Ok((status, body))
}

/// [`request`] with a caller-chosen per-read timeout; returns
/// `(status, body)`.
///
/// # Errors
///
/// Propagates connect/read/write failures (including the timeout
/// expiring mid-read); a response without a parsable status line
/// reports status `0` rather than erroring.
pub fn request_with_timeout<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    target: &str,
    body: &[u8],
    read_timeout: Duration,
) -> std::io::Result<(u16, Vec<u8>)> {
    let (status, _, body) = exchange(addr, method, target, body, read_timeout)?;
    Ok((status, body))
}

/// Sends one request over a fresh connection; returns
/// `(status, headers, body)` with header names lowercased — the variant
/// for callers that read response metadata such as `x-mobipriv-trace`
/// or `x-mobipriv-cache`.
///
/// # Errors
///
/// Propagates connect/read/write failures; a response without a parsable
/// status line reports status `0` rather than erroring.
pub fn request_full<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    target: &str,
    body: &[u8],
) -> std::io::Result<(u16, Headers, Vec<u8>)> {
    exchange(addr, method, target, body, DEFAULT_READ_TIMEOUT)
}

fn exchange<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    target: &str,
    body: &[u8],
    read_timeout: Duration,
) -> std::io::Result<(u16, Headers, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(read_timeout))?;
    // `connection: close` keeps the read-to-EOF parse below correct
    // against a keep-alive server (which would otherwise hold the
    // socket open waiting for the next request).
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nhost: client\r\ncontent-type: text/csv\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let status = response
        .split(|&b| b == b' ')
        .nth(1)
        .and_then(|s| std::str::from_utf8(s).ok())
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or(0);
    let split = response.windows(4).position(|w| w == b"\r\n\r\n");
    let headers = split
        .and_then(|split| std::str::from_utf8(&response[..split]).ok())
        .map(|head| {
            head.lines()
                .skip(1) // status line
                .filter_map(|line| {
                    let (name, value) = line.split_once(':')?;
                    Some((name.trim().to_ascii_lowercase(), value.trim().to_owned()))
                })
                .collect()
        })
        .unwrap_or_default();
    let body = split
        .map(|split| response[split + 4..].to_vec())
        .unwrap_or_default();
    Ok((status, headers, body))
}

/// A persistent (keep-alive) client connection to one server.
///
/// Responses are framed by `Content-Length`, so the socket survives
/// across requests; when the server closes it instead (idle deadline,
/// per-connection request cap, restart, `connection: close` response)
/// the next request transparently redials — and a request that fails
/// on a *reused* socket is retried once on a fresh one, since a stale
/// pooled connection is indistinguishable from the server having
/// closed it a moment ago. The [`Connection::requests`] /
/// [`Connection::connects`] counters let callers report the achieved
/// reuse rate.
#[derive(Debug)]
pub struct Connection {
    addr: std::net::SocketAddr,
    stream: Option<BufReader<TcpStream>>,
    read_timeout: Duration,
    requests: u64,
    connects: u64,
}

impl Connection {
    /// Resolves `addr` (first resolution wins) and dials it eagerly.
    ///
    /// # Errors
    ///
    /// Resolution or connect failure.
    pub fn connect<A: ToSocketAddrs>(addr: A, read_timeout: Duration) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        let mut conn = Connection {
            addr,
            stream: None,
            read_timeout,
            requests: 0,
            connects: 0,
        };
        conn.dial()?;
        Ok(conn)
    }

    /// The resolved peer address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Requests completed over this handle.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// TCP connections dialed over this handle's lifetime; the reuse
    /// rate is `1 - connects/requests`.
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Whether a socket is currently open (the next request will reuse
    /// it rather than dial).
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Sends one request and reads the `Content-Length`-framed
    /// response; returns `(status, headers, body)` with header names
    /// lowercased, exactly like [`request_full`].
    ///
    /// # Errors
    ///
    /// Connect/read/write failures after the one stale-socket retry
    /// described on [`Connection`]; a response without a parsable
    /// status line reports status `0` rather than erroring.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Headers, Vec<u8>)> {
        self.request_typed(method, target, "text/csv", body)
    }

    /// [`Connection::request`] with an explicit request `content-type`
    /// — the shard router forwards the client's body verbatim and must
    /// forward its type (CSV vs NDJSON vs binary) with it.
    ///
    /// # Errors
    ///
    /// Same surface as [`Connection::request`].
    pub fn request_typed(
        &mut self,
        method: &str,
        target: &str,
        content_type: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Headers, Vec<u8>)> {
        let mut attempt = 0;
        loop {
            let reused = self.stream.is_some();
            match self.try_request(method, target, content_type, body) {
                Ok(response) => {
                    self.requests += 1;
                    return Ok(response);
                }
                Err(e) => {
                    self.stream = None;
                    // Only a first failure on a reused socket is
                    // plausibly just staleness; a fresh socket failing
                    // is a real error the caller must see.
                    if !reused || attempt > 0 {
                        return Err(e);
                    }
                    attempt += 1;
                }
            }
        }
    }

    fn dial(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        // Requests here are strictly sequential request/response pairs:
        // disable Nagle so a small request is not held back waiting for
        // a delayed ACK of the previous response.
        let _ = stream.set_nodelay(true);
        self.connects += 1;
        self.stream = Some(BufReader::new(stream));
        Ok(())
    }

    fn try_request(
        &mut self,
        method: &str,
        target: &str,
        content_type: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Headers, Vec<u8>)> {
        if self.stream.is_none() {
            self.dial()?;
        }
        let reader = self.stream.as_mut().expect("dialed above");
        let stream = reader.get_mut();
        write!(
            stream,
            "{method} {target} HTTP/1.1\r\nhost: client\r\ncontent-type: {content_type}\r\n\
             content-length: {}\r\n\r\n",
            body.len()
        )?;
        stream.write_all(body)?;
        stream.flush()?;
        let status_line = read_response_line(reader)?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .unwrap_or(0);
        let mut headers = Headers::new();
        let mut content_length: Option<u64> = None;
        let mut close = false;
        loop {
            let line = read_response_line(reader)?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_owned();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            if name == "connection" && value.eq_ignore_ascii_case("close") {
                close = true;
            }
            headers.push((name, value));
        }
        let body = match content_length {
            Some(n) => {
                let mut buf = vec![0u8; usize::try_from(n).unwrap_or(usize::MAX)];
                reader.read_exact(&mut buf)?;
                buf
            }
            None => {
                // Unframed response: EOF delimits it, the socket is spent.
                close = true;
                let mut buf = Vec::new();
                reader.read_to_end(&mut buf)?;
                buf
            }
        };
        if close {
            self.stream = None;
        }
        Ok((status, headers, body))
    }
}

/// Reads one CRLF-terminated response line (without the terminator),
/// erroring on EOF — a closed socket mid-head is never a valid
/// response.
fn read_response_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut line = Vec::new();
    let n = reader
        .by_ref()
        .take(64 * 1024)
        .read_until(b'\n', &mut line)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 response head")
    })
}

/// The first value of `name` (lowercase) in a [`request_full`] header
/// list.
pub fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Extracts `"field":"value"` from a flat JSON object.
pub fn json_str_field(body: &[u8], field: &str) -> Option<String> {
    let text = std::str::from_utf8(body).ok()?;
    let needle = format!("\"{field}\":\"");
    let start = text.find(&needle)? + needle.len();
    let end = text[start..].find('"')? + start;
    Some(text[start..end].to_owned())
}

/// Extracts `"field":123` (a non-negative integer) from a flat JSON
/// object.
pub fn json_u64_field(body: &[u8], field: &str) -> Option<u64> {
    let text = std::str::from_utf8(body).ok()?;
    let needle = format!("\"{field}\":");
    let start = text.find(&needle)? + needle.len();
    let digits: String = text[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_scrapers_read_flat_documents() {
        let doc = br#"{"id":"8c1a63df56032b9d","status":"done","computations":7,"nested":{"x":1}}"#;
        assert_eq!(
            json_str_field(doc, "id").as_deref(),
            Some("8c1a63df56032b9d")
        );
        assert_eq!(json_str_field(doc, "status").as_deref(), Some("done"));
        assert_eq!(json_str_field(doc, "missing"), None);
        assert_eq!(json_u64_field(doc, "computations"), Some(7));
        assert_eq!(json_u64_field(doc, "id"), None, "string is not a number");
    }
}
