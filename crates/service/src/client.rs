//! A minimal blocking HTTP/1.1 client for the service's own tooling —
//! `mobipriv-loadgen`, the perf bench and the smoke harnesses all speak
//! to the server through this one implementation instead of carrying
//! private copies of the request/parse logic.
//!
//! One request per connection (`Connection: close` is what the server
//! speaks), fixed-length bodies only, and a deliberately tiny JSON
//! field scraper for the flat status documents the API returns — full
//! documents go through [`mobipriv_eval::Json`] instead.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Response header pairs, names lowercased — see [`request_full`].
pub type Headers = Vec<(String, String)>;

/// Default per-read timeout for [`request`]/[`request_full`]. Callers
/// with tighter latency expectations (the load generator's soak
/// assertions, the resilience tests) pass their own via
/// [`request_with_timeout`] instead of inheriting this worst-case
/// ceiling.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(120);

/// Sends one request over a fresh connection; returns `(status, body)`.
///
/// # Errors
///
/// Propagates connect/read/write failures; a response without a parsable
/// status line reports status `0` rather than erroring.
pub fn request<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    target: &str,
    body: &[u8],
) -> std::io::Result<(u16, Vec<u8>)> {
    let (status, _, body) = request_full(addr, method, target, body)?;
    Ok((status, body))
}

/// [`request`] with a caller-chosen per-read timeout; returns
/// `(status, body)`.
///
/// # Errors
///
/// Propagates connect/read/write failures (including the timeout
/// expiring mid-read); a response without a parsable status line
/// reports status `0` rather than erroring.
pub fn request_with_timeout<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    target: &str,
    body: &[u8],
    read_timeout: Duration,
) -> std::io::Result<(u16, Vec<u8>)> {
    let (status, _, body) = exchange(addr, method, target, body, read_timeout)?;
    Ok((status, body))
}

/// Sends one request over a fresh connection; returns
/// `(status, headers, body)` with header names lowercased — the variant
/// for callers that read response metadata such as `x-mobipriv-trace`
/// or `x-mobipriv-cache`.
///
/// # Errors
///
/// Propagates connect/read/write failures; a response without a parsable
/// status line reports status `0` rather than erroring.
pub fn request_full<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    target: &str,
    body: &[u8],
) -> std::io::Result<(u16, Headers, Vec<u8>)> {
    exchange(addr, method, target, body, DEFAULT_READ_TIMEOUT)
}

fn exchange<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    target: &str,
    body: &[u8],
    read_timeout: Duration,
) -> std::io::Result<(u16, Headers, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(read_timeout))?;
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nhost: client\r\ncontent-type: text/csv\r\n\
         content-length: {}\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let status = response
        .split(|&b| b == b' ')
        .nth(1)
        .and_then(|s| std::str::from_utf8(s).ok())
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or(0);
    let split = response.windows(4).position(|w| w == b"\r\n\r\n");
    let headers = split
        .and_then(|split| std::str::from_utf8(&response[..split]).ok())
        .map(|head| {
            head.lines()
                .skip(1) // status line
                .filter_map(|line| {
                    let (name, value) = line.split_once(':')?;
                    Some((name.trim().to_ascii_lowercase(), value.trim().to_owned()))
                })
                .collect()
        })
        .unwrap_or_default();
    let body = split
        .map(|split| response[split + 4..].to_vec())
        .unwrap_or_default();
    Ok((status, headers, body))
}

/// The first value of `name` (lowercase) in a [`request_full`] header
/// list.
pub fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Extracts `"field":"value"` from a flat JSON object.
pub fn json_str_field(body: &[u8], field: &str) -> Option<String> {
    let text = std::str::from_utf8(body).ok()?;
    let needle = format!("\"{field}\":\"");
    let start = text.find(&needle)? + needle.len();
    let end = text[start..].find('"')? + start;
    Some(text[start..end].to_owned())
}

/// Extracts `"field":123` (a non-negative integer) from a flat JSON
/// object.
pub fn json_u64_field(body: &[u8], field: &str) -> Option<u64> {
    let text = std::str::from_utf8(body).ok()?;
    let needle = format!("\"{field}\":");
    let start = text.find(&needle)? + needle.len();
    let digits: String = text[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_scrapers_read_flat_documents() {
        let doc = br#"{"id":"8c1a63df56032b9d","status":"done","computations":7,"nested":{"x":1}}"#;
        assert_eq!(
            json_str_field(doc, "id").as_deref(),
            Some("8c1a63df56032b9d")
        );
        assert_eq!(json_str_field(doc, "status").as_deref(), Some("done"));
        assert_eq!(json_str_field(doc, "missing"), None);
        assert_eq!(json_u64_field(doc, "computations"), Some(7));
        assert_eq!(json_u64_field(doc, "id"), None, "string is not a number");
    }
}
