//! The compute circuit breaker behind the node's degraded mode.
//!
//! Cold computes (cache misses that would actually run the engine) pass
//! through [`Breaker::admit`] before they start. The breaker watches
//! *consecutive* compute failures — panics, injected faults, exhausted
//! deadlines — and cycles through the classic three states:
//!
//! ```text
//!            failure × threshold              open interval elapses
//!  Closed ──────────────────────▶ Open ─────────────────────────────▶ HalfOpen
//!    ▲                             ▲                                     │
//!    │ probe succeeds              │ probe fails                         │ one
//!    └─────────────────────────────┴──────────────────────── admits ────┘ probe
//! ```
//!
//! While `Open`, cold computes are rejected with
//! [`ServiceError::Overloaded`] (`503` + `Retry-After`); cache hits,
//! `/metrics` and `/healthz` keep serving. Once the open interval
//! elapses the next admission becomes a **half-open probe**: exactly one
//! compute runs, its success closes the breaker, its failure re-opens
//! it. Recovery therefore needs no operator action — one healthy
//! compute heals the node.
//!
//! Degradation has a second trigger independent of failures: an accept
//! queue deeper than [`ResilienceConfig::degrade_queue_depth`] sheds
//! cold computes the same way (without moving the breaker state), so a
//! node drowning in backlog stops feeding it expensive work.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::ServiceError;

/// Tunables for the failure-domain layer: compute budgets, the job
/// retry schedule and the breaker/degradation thresholds. Carried on
/// [`ServerConfig`](crate::ServerConfig) and shared by handlers and job
/// executors through [`AppState`](crate::AppState).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Default and upper bound for the per-request compute budget; a
    /// `timeout_ms` query parameter is clamped to this.
    pub compute_timeout: Duration,
    /// Total attempts a job gets before it is quarantined as `failed`
    /// (1 = no retries). Only transient failures are retried.
    pub max_attempts: u32,
    /// Base of the exponential backoff schedule between job attempts.
    pub backoff_base_ms: u64,
    /// Ceiling on a single backoff sleep.
    pub backoff_cap_ms: u64,
    /// Consecutive compute failures that open the breaker.
    pub breaker_failure_threshold: u32,
    /// How long the breaker stays open before admitting a probe.
    pub breaker_open: Duration,
    /// Accept-queue depth at (or past) which cold computes are shed
    /// even with a closed breaker.
    pub degrade_queue_depth: i64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            compute_timeout: Duration::from_secs(30),
            max_attempts: 3,
            backoff_base_ms: 25,
            backoff_cap_ms: 1_000,
            breaker_failure_threshold: 5,
            breaker_open: Duration::from_secs(1),
            // Three quarters of the default accept queue (64): deep
            // enough that bursts don't flap, shallow enough that a
            // drowning node stops feeding the backlog cold computes.
            degrade_queue_depth: 48,
        }
    }
}

impl ResilienceConfig {
    /// Clamps a client-requested `timeout_ms` to the configured ceiling;
    /// `None` (no parameter) gets the full default budget.
    pub fn clamp_budget(&self, requested_ms: Option<u64>) -> Duration {
        match requested_ms {
            None => self.compute_timeout,
            Some(ms) => Duration::from_millis(ms).min(self.compute_timeout),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed { failures: u32 },
    Open { until: Instant },
    HalfOpen { probing: bool },
}

/// The compute circuit breaker (see the module docs for the state
/// machine). All transitions happen inside [`Breaker::admit`] and the
/// outcome calls on the [`Permit`] it issues.
pub struct Breaker {
    state: Mutex<State>,
    failure_threshold: u32,
    open_for: Duration,
}

/// An admitted compute, holding the breaker's accounting open until an
/// outcome is reported. **Dropping a permit unresolved counts as a
/// failure** — that is what keeps a panicking compute (which unwinds
/// past any success call) from wedging a half-open probe forever.
pub struct Permit<'a> {
    breaker: &'a Breaker,
    resolved: bool,
}

impl Permit<'_> {
    /// The compute succeeded: closes the breaker and zeroes the
    /// consecutive-failure count.
    pub fn succeed(mut self) {
        self.resolved = true;
        self.breaker.on_success();
    }

    /// The compute failed in a way that indicts the node (panic,
    /// internal error, exhausted deadline).
    pub fn fail(mut self) {
        self.resolved = true;
        self.breaker.on_failure();
    }

    /// The compute failed for a reason that says nothing about node
    /// health (a permanent, client-caused error): releases a probe slot
    /// without moving the state or the failure count.
    pub fn absolve(mut self) {
        self.resolved = true;
        self.breaker.on_neutral();
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        if !self.resolved {
            self.breaker.on_failure();
        }
    }
}

impl Breaker {
    /// A closed breaker with the given trip threshold and open interval.
    pub fn new(failure_threshold: u32, open_for: Duration) -> Breaker {
        Breaker {
            state: Mutex::new(State::Closed { failures: 0 }),
            failure_threshold: failure_threshold.max(1),
            open_for,
        }
    }

    /// Asks to run one cold compute now.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] while the breaker is open (or a
    /// half-open probe is already in flight), carrying the seconds a
    /// client should wait before retrying.
    pub fn admit(&self) -> Result<Permit<'_>, ServiceError> {
        let mut state = self.state.lock().expect("breaker mutex poisoned");
        match *state {
            State::Closed { .. } => Ok(Permit {
                breaker: self,
                resolved: false,
            }),
            State::Open { until } => {
                let now = Instant::now();
                if now < until {
                    Err(ServiceError::Overloaded(retry_after_s(until - now)))
                } else {
                    *state = State::HalfOpen { probing: true };
                    Ok(Permit {
                        breaker: self,
                        resolved: false,
                    })
                }
            }
            State::HalfOpen { probing: true } => {
                Err(ServiceError::Overloaded(retry_after_s(self.open_for)))
            }
            State::HalfOpen { probing: false } => {
                *state = State::HalfOpen { probing: true };
                Ok(Permit {
                    breaker: self,
                    resolved: false,
                })
            }
        }
    }

    /// Whether the breaker is contributing to degraded mode (anything
    /// but fully closed).
    pub fn is_open(&self) -> bool {
        !matches!(
            *self.state.lock().expect("breaker mutex poisoned"),
            State::Closed { .. }
        )
    }

    /// The `mobipriv_breaker_state` gauge value: 0 closed, 1 half-open,
    /// 2 open. An open breaker whose interval has elapsed reads as
    /// half-open (the next admission will probe).
    pub fn state_code(&self) -> i64 {
        match *self.state.lock().expect("breaker mutex poisoned") {
            State::Closed { .. } => 0,
            State::HalfOpen { .. } => 1,
            State::Open { until } => {
                if Instant::now() >= until {
                    1
                } else {
                    2
                }
            }
        }
    }

    fn on_success(&self) {
        *self.state.lock().expect("breaker mutex poisoned") = State::Closed { failures: 0 };
    }

    fn on_failure(&self) {
        let mut state = self.state.lock().expect("breaker mutex poisoned");
        *state = match *state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.failure_threshold {
                    State::Open {
                        until: Instant::now() + self.open_for,
                    }
                } else {
                    State::Closed { failures }
                }
            }
            State::HalfOpen { .. } | State::Open { .. } => State::Open {
                until: Instant::now() + self.open_for,
            },
        };
    }

    fn on_neutral(&self) {
        let mut state = self.state.lock().expect("breaker mutex poisoned");
        if let State::HalfOpen { probing: true } = *state {
            *state = State::HalfOpen { probing: false };
        }
    }
}

/// Whole seconds a client should wait, rounded up and never zero — a
/// `Retry-After: 0` invites an immediate retry storm.
fn retry_after_s(remaining: Duration) -> u64 {
    remaining.as_secs_f64().ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> Breaker {
        Breaker::new(2, Duration::from_millis(40))
    }

    #[test]
    fn consecutive_failures_open_then_probe_heals() {
        let b = breaker();
        b.admit().unwrap().fail();
        assert_eq!(b.state_code(), 0, "below threshold stays closed");
        b.admit().unwrap().fail();
        assert_eq!(b.state_code(), 2, "threshold opens");
        let Err(err) = b.admit() else {
            panic!("open breaker must shed");
        };
        assert!(matches!(err, ServiceError::Overloaded(s) if s >= 1));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(b.state_code(), 1, "elapsed interval reads half-open");
        let probe = b.admit().expect("first admission after open probes");
        // A second caller during the probe is still shed.
        assert!(b.admit().is_err());
        probe.succeed();
        assert_eq!(b.state_code(), 0);
        assert!(!b.is_open());
        b.admit().expect("closed again").succeed();
    }

    #[test]
    fn failed_probe_reopens() {
        let b = breaker();
        b.admit().unwrap().fail();
        b.admit().unwrap().fail();
        std::thread::sleep(Duration::from_millis(50));
        b.admit().unwrap().fail();
        assert_eq!(b.state_code(), 2, "failed probe re-opens");
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = breaker();
        b.admit().unwrap().fail();
        b.admit().unwrap().succeed();
        b.admit().unwrap().fail();
        assert_eq!(b.state_code(), 0, "non-consecutive failures never trip");
    }

    #[test]
    fn dropped_permit_counts_as_failure() {
        let b = breaker();
        // Simulates a panicking compute unwinding past the outcome call.
        drop(b.admit().unwrap());
        drop(b.admit().unwrap());
        assert_eq!(b.state_code(), 2);
    }

    #[test]
    fn permanent_errors_are_neutral_and_release_the_probe() {
        let b = breaker();
        b.admit().unwrap().absolve();
        b.admit().unwrap().fail();
        b.admit().unwrap().fail();
        std::thread::sleep(Duration::from_millis(50));
        // Probe hits a client-caused error: slot frees, state stays
        // half-open, the next admission probes again.
        b.admit().unwrap().absolve();
        assert_eq!(b.state_code(), 1);
        b.admit().unwrap().succeed();
        assert_eq!(b.state_code(), 0);
    }

    #[test]
    fn budget_clamping() {
        let cfg = ResilienceConfig {
            compute_timeout: Duration::from_millis(500),
            ..ResilienceConfig::default()
        };
        assert_eq!(cfg.clamp_budget(None), Duration::from_millis(500));
        assert_eq!(cfg.clamp_budget(Some(100)), Duration::from_millis(100));
        assert_eq!(cfg.clamp_budget(Some(10_000)), Duration::from_millis(500));
        assert_eq!(cfg.clamp_budget(Some(0)), Duration::from_millis(0));
    }
}
