//! A minimal, allocation-conscious HTTP/1.1 layer on `std::io`.
//!
//! Only the subset the service needs: request-head parsing with strict
//! size caps, body streaming for both `Content-Length` and
//! `Transfer-Encoding: chunked` framing (the body never materializes —
//! it is pushed to a caller-supplied sink in bounded chunks), and
//! response writing. Connections are persistent (HTTP/1.1 keep-alive):
//! responses are `Content-Length`-framed so the same socket carries
//! sequential requests, and [`DeadlineReader::next_request`] parks a
//! worker between them under an idle deadline. `Connection: close` (or
//! an HTTP/1.0 request without `Connection: keep-alive`) restores the
//! old one-request-per-connection behavior.

use std::io::{BufRead, Write};

use crate::ServiceError;

/// Cap on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Read granularity for body streaming.
const BODY_CHUNK: usize = 16 * 1024;

/// The parsed request line and headers (the body stays on the wire
/// until [`stream_body`] pulls it).
#[derive(Debug, Clone)]
pub struct RequestHead {
    /// Request method, uppercase as sent (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path component of the request target (no query).
    pub path: String,
    /// Decoded query parameters, in wire order.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// Whether the request line said `HTTP/1.1` (`false` = `HTTP/1.0`),
    /// which decides the default connection persistence.
    pub http11: bool,
}

/// How the request body is framed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyFraming {
    /// No body (no framing headers present).
    None,
    /// `Content-Length: n`.
    Length(u64),
    /// `Transfer-Encoding: chunked`.
    Chunked,
}

impl RequestHead {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first query parameter with this name (same first-match
    /// semantics as [`Params`](crate::registry::Params), which it
    /// delegates to).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        crate::registry::Params(&self.query).get(name)
    }

    /// Whether the client asked for the connection to persist after
    /// this request: HTTP/1.1 defaults to keep-alive unless a
    /// `Connection` header lists `close`; HTTP/1.0 defaults to close
    /// unless it lists `keep-alive` (both matched token-wise, so
    /// `Connection: close, te` still closes).
    pub fn keep_alive(&self) -> bool {
        let token = |name: &str| {
            self.header("connection")
                .is_some_and(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case(name)))
        };
        if self.http11 {
            !token("close")
        } else {
            token("keep-alive")
        }
    }

    /// Determines the body framing from the headers.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::BadRequest`] on conflicting framing
    /// headers, an unparsable `Content-Length`, or an unsupported
    /// `Transfer-Encoding`.
    pub fn framing(&self) -> Result<BodyFraming, ServiceError> {
        let chunked = match self.header("transfer-encoding") {
            Some(te) if te.eq_ignore_ascii_case("chunked") => true,
            Some(te) => {
                return Err(ServiceError::BadRequest(format!(
                    "unsupported transfer-encoding `{te}`"
                )))
            }
            None => false,
        };
        // RFC 9112 §6.3: repeated Content-Length headers are a request-
        // desync vector (a front proxy may frame on a different one) —
        // reject rather than pick a winner.
        if self
            .headers
            .iter()
            .filter(|(k, _)| k == "content-length")
            .count()
            > 1
        {
            return Err(ServiceError::BadRequest(
                "multiple content-length headers".into(),
            ));
        }
        let length = self.header("content-length");
        match (chunked, length) {
            (true, Some(_)) => Err(ServiceError::BadRequest(
                "both content-length and chunked framing present".into(),
            )),
            (true, None) => Ok(BodyFraming::Chunked),
            (false, Some(v)) => v
                .trim()
                .parse::<u64>()
                .map(BodyFraming::Length)
                .map_err(|_| ServiceError::BadRequest(format!("invalid content-length `{v}`"))),
            (false, None) => Ok(BodyFraming::None),
        }
    }
}

/// Classifies a connection read failure: a timeout — the per-read
/// socket timeout (`WouldBlock`/`TimedOut` on Unix) or the
/// [`DeadlineReader`]'s whole-request budget — is the *client's*
/// slowness (slow-loris, stalled upload) and maps to
/// [`ServiceError::ClientTimeout`] (`408`, counted in
/// `mobipriv_client_timeouts_total`); anything else stays a `400`.
fn read_error(context: &str, e: &std::io::Error) -> ServiceError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            ServiceError::ClientTimeout(format!("{context}: {e}"))
        }
        _ => ServiceError::BadRequest(format!("{context}: {e}")),
    }
}

/// Reads one CRLF- (or LF-) terminated line, enforcing the remaining
/// budget with `overflow` as the error (request heads map overflow to
/// `413` so an oversized pipelined head gets a proper status; chunk-
/// framing lines stay a `400`). Returns the line without its terminator.
fn read_line<R: BufRead>(
    r: &mut R,
    budget: &mut usize,
    overflow: fn() -> ServiceError,
) -> Result<String, ServiceError> {
    let mut buf = Vec::new();
    loop {
        let available = r
            .fill_buf()
            .map_err(|e| read_error("connection read failed", &e))?;
        if available.is_empty() {
            return Err(ServiceError::BadRequest(
                "connection closed before a complete request".into(),
            ));
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let consumed = match newline {
            Some(pos) => pos + 1,
            None => available.len(),
        };
        if consumed > *budget {
            return Err(overflow());
        }
        *budget -= consumed;
        match newline {
            Some(pos) => {
                buf.extend_from_slice(&available[..pos]);
                r.consume(consumed);
                break;
            }
            None => {
                buf.extend_from_slice(available);
                r.consume(consumed);
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map_err(|_| ServiceError::BadRequest("request head is not valid UTF-8".into()))
}

/// The error a request head larger than [`MAX_HEAD_BYTES`] maps to: a
/// `413`, so that on a persistent connection an oversized pipelined
/// head is answered with a real status (and a close) rather than a
/// generic `400`.
fn head_overflow() -> ServiceError {
    ServiceError::PayloadTooLarge(MAX_HEAD_BYTES as u64)
}

/// The error an oversized chunk-framing line maps to. Generic on
/// purpose: these budgets are protocol plumbing (a few bytes for the
/// inter-chunk CRLF), not a client-visible payload limit.
fn framing_overflow() -> ServiceError {
    ServiceError::BadRequest("protocol line exceeds its size budget".into())
}

/// Parses the request line and headers off the stream, leaving the
/// reader positioned at the first body byte.
///
/// # Errors
///
/// Returns [`ServiceError::BadRequest`] on malformed syntax, or
/// [`ServiceError::PayloadTooLarge`] for a head larger than
/// [`MAX_HEAD_BYTES`].
pub fn read_head<R: BufRead>(r: &mut R) -> Result<RequestHead, ServiceError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line(r, &mut budget, head_overflow)?;
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(ServiceError::BadRequest(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ServiceError::BadRequest(format!(
            "unsupported protocol version `{version}`"
        )));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    // Paths use plain percent-escapes; '+'-as-space is a *query*
    // (form-urlencoding) convention only, so `/a+b` must stay `/a+b`.
    let path = decode_component(raw_path, false)?;
    let query = match raw_query {
        Some(q) => parse_query(q)?,
        None => Vec::new(),
    };
    let mut headers = Vec::new();
    loop {
        let line = read_line(r, &mut budget, head_overflow)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ServiceError::BadRequest(format!("malformed header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    Ok(RequestHead {
        method: method.to_owned(),
        path,
        query,
        headers,
        http11: version == "HTTP/1.1",
    })
}

/// Decodes `%XX` escapes and `+` (as space) — the query-string
/// (form-urlencoding) convention.
///
/// # Errors
///
/// Returns [`ServiceError::BadRequest`] on truncated or non-hex escapes
/// and non-UTF-8 results.
pub fn percent_decode(s: &str) -> Result<String, ServiceError> {
    decode_component(s, true)
}

fn decode_component(s: &str, plus_as_space: bool) -> Result<String, ServiceError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                // Decode from raw bytes: slicing the str here could
                // split a multibyte UTF-8 character and panic.
                let hex = bytes.get(i + 1..i + 3).ok_or_else(|| {
                    ServiceError::BadRequest(format!("truncated percent-escape in `{s}`"))
                })?;
                let byte = match (hex_digit(hex[0]), hex_digit(hex[1])) {
                    (Some(hi), Some(lo)) => hi * 16 + lo,
                    _ => {
                        return Err(ServiceError::BadRequest(
                            "invalid percent-escape (expected two hex digits)".into(),
                        ))
                    }
                };
                out.push(byte);
                i += 3;
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| ServiceError::BadRequest(format!("query is not valid UTF-8: `{s}`")))
}

/// A reader that fails once an overall wall-clock budget is exhausted.
///
/// Socket read timeouts are per-`read` and reset on every byte, so a
/// client trickling one byte per interval can hold a worker forever.
/// Wrapping the connection in a `DeadlineReader` turns the configured
/// timeout into a whole-request budget: head and body parsing both go
/// through it, and the first read past the deadline errors out with
/// `TimedOut` (mapped to a clean `408` by [`read_error`]).
#[derive(Debug)]
pub struct DeadlineReader<R> {
    inner: R,
    deadline: std::time::Instant,
    bytes_read: u64,
}

/// What arrived while a persistent connection waited for its next
/// request (see [`DeadlineReader::next_request`]).
#[derive(Debug)]
pub enum NextRequest {
    /// A complete request head was parsed — serve it.
    Head(RequestHead),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// No request arrived within the idle deadline.
    IdleTimeout,
    /// The server's shutdown flag was observed while idle: drain.
    Drain,
}

impl<R> DeadlineReader<R> {
    /// Wraps `inner` with a budget of `budget` from now.
    pub fn new(inner: R, budget: std::time::Duration) -> Self {
        DeadlineReader {
            inner,
            deadline: std::time::Instant::now() + budget,
            bytes_read: 0,
        }
    }

    /// Re-arms the whole-request budget to `budget` from now — called
    /// at the start of each request on a persistent connection, so
    /// every request gets the same budget a fresh connection would.
    pub fn set_deadline(&mut self, budget: std::time::Duration) {
        self.deadline = std::time::Instant::now() + budget;
    }

    /// Total bytes consumed through this wrapper since construction.
    /// The connection loop diffs this across a handler call to learn
    /// whether a declared body was left unread (in which case the
    /// connection cannot be reused — the leftover bytes would be parsed
    /// as the next request head).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// The wrapped reader.
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// The wrapped reader, shared.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    fn check(&self) -> std::io::Result<()> {
        if std::time::Instant::now() >= self.deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request exceeded its overall time budget",
            ));
        }
        Ok(())
    }
}

impl DeadlineReader<std::io::BufReader<std::net::TcpStream>> {
    /// Parks the connection until the first byte of the next request,
    /// then parses the head under a fresh whole-request `budget`.
    ///
    /// Between requests the socket is polled in `poll`-sized slices so
    /// the shutdown flag and the `idle` deadline are both observed
    /// within one slice even while the connection sits parked; once a
    /// byte arrives the wait stops being idle and the per-request
    /// budget applies to the whole head, exactly as on a fresh
    /// connection. Pipelined bytes already buffered count as arrived
    /// data, so back-to-back requests never wait on the socket.
    ///
    /// # Errors
    ///
    /// Whatever [`read_head`] returns once bytes have started flowing
    /// (malformed or oversized heads, mid-head stalls). The idle wait
    /// itself never errors: it reports [`NextRequest::Closed`],
    /// [`NextRequest::IdleTimeout`] or [`NextRequest::Drain`].
    pub fn next_request(
        &mut self,
        idle: std::time::Duration,
        poll: std::time::Duration,
        budget: std::time::Duration,
        shutdown: &std::sync::atomic::AtomicBool,
    ) -> Result<NextRequest, ServiceError> {
        use std::sync::atomic::Ordering;
        let idle_deadline = std::time::Instant::now() + idle;
        // The wait runs on the short socket timeout; park the request
        // deadline past the idle horizon so `fill_buf`'s own check
        // cannot fire while the connection is merely quiet.
        self.deadline = idle_deadline + budget;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return Ok(NextRequest::Drain);
            }
            let _ = self.inner.get_ref().set_read_timeout(Some(poll));
            match self.inner.fill_buf() {
                Ok([]) => return Ok(NextRequest::Closed),
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    ) =>
                {
                    if std::time::Instant::now() >= idle_deadline {
                        return Ok(NextRequest::IdleTimeout);
                    }
                }
                // A transport error between requests has no request to
                // answer — same as the peer going away.
                Err(_) => return Ok(NextRequest::Closed),
            }
        }
        // First byte seen: this is a live request. Restore the full
        // per-read socket timeout and arm the whole-request budget.
        let _ = self.inner.get_ref().set_read_timeout(Some(budget));
        self.deadline = std::time::Instant::now() + budget;
        read_head(self).map(NextRequest::Head)
    }
}

impl<R: std::io::Read> std::io::Read for DeadlineReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.check()?;
        let n = self.inner.read(buf)?;
        self.bytes_read += n as u64;
        Ok(n)
    }
}

impl<R: BufRead> BufRead for DeadlineReader<R> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        self.check()?;
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.bytes_read += amt as u64;
        self.inner.consume(amt);
    }
}

/// Reads and discards up to `limit` bytes, stopping at EOF, the first
/// read error, or once `deadline` has elapsed (checked between reads —
/// combined with a per-read socket timeout this bounds total wall time
/// even against a client trickling one byte per read).
pub fn drain<R: std::io::Read>(r: &mut R, mut limit: u64, deadline: std::time::Duration) {
    let start = std::time::Instant::now();
    let mut buf = [0u8; BODY_CHUNK];
    while limit > 0 && start.elapsed() < deadline {
        let want = limit.min(BODY_CHUNK as u64) as usize;
        match r.read(&mut buf[..want]) {
            Ok(0) | Err(_) => break,
            Ok(n) => limit -= n as u64,
        }
    }
}

fn hex_digit(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

fn parse_query(q: &str) -> Result<Vec<(String, String)>, ServiceError> {
    let mut out = Vec::new();
    for pair in q.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(k)?, percent_decode(v)?));
    }
    Ok(out)
}

/// Streams the request body into `sink` in chunks of at most 16 KiB,
/// returning the total byte count. Enforces `max_bytes` for both
/// framings *before* buffering anything beyond the limit.
///
/// # Errors
///
/// * [`ServiceError::PayloadTooLarge`] when the body exceeds `max_bytes`;
/// * [`ServiceError::BadRequest`] on truncated bodies or malformed
///   chunked framing;
/// * whatever `sink` returns, propagated at the first failure.
pub fn stream_body<R, F>(
    r: &mut R,
    framing: BodyFraming,
    max_bytes: u64,
    mut sink: F,
) -> Result<u64, ServiceError>
where
    R: BufRead,
    F: FnMut(&[u8]) -> Result<(), ServiceError>,
{
    match framing {
        BodyFraming::None => Ok(0),
        BodyFraming::Length(len) => {
            if len > max_bytes {
                return Err(ServiceError::PayloadTooLarge(max_bytes));
            }
            copy_exact(r, len, &mut sink)?;
            Ok(len)
        }
        BodyFraming::Chunked => {
            let mut total: u64 = 0;
            let mut head_budget = MAX_HEAD_BYTES; // generous cap on framing lines
            loop {
                let size_line = read_line(r, &mut head_budget, framing_overflow)?;
                head_budget = MAX_HEAD_BYTES;
                let size_hex = size_line.split(';').next().unwrap_or("").trim();
                let size = u64::from_str_radix(size_hex, 16).map_err(|_| {
                    ServiceError::BadRequest(format!("invalid chunk size `{size_line}`"))
                })?;
                if size == 0 {
                    // Trailer section: lines until the blank terminator.
                    loop {
                        let trailer = read_line(r, &mut head_budget, framing_overflow)?;
                        if trailer.is_empty() {
                            return Ok(total);
                        }
                    }
                }
                total = total.saturating_add(size);
                if total > max_bytes {
                    return Err(ServiceError::PayloadTooLarge(max_bytes));
                }
                copy_exact(r, size, &mut sink)?;
                let mut crlf_budget = 4;
                let sep = read_line(r, &mut crlf_budget, framing_overflow)?;
                if !sep.is_empty() {
                    return Err(ServiceError::BadRequest(
                        "missing CRLF after chunk data".into(),
                    ));
                }
            }
        }
    }
}

fn copy_exact<R, F>(r: &mut R, mut remaining: u64, sink: &mut F) -> Result<(), ServiceError>
where
    R: BufRead,
    F: FnMut(&[u8]) -> Result<(), ServiceError>,
{
    let mut buf = [0u8; BODY_CHUNK];
    while remaining > 0 {
        let want = remaining.min(BODY_CHUNK as u64) as usize;
        let n = std::io::Read::read(r, &mut buf[..want])
            .map_err(|e| read_error("body read failed", &e))?;
        if n == 0 {
            return Err(ServiceError::BadRequest(
                "connection closed mid-body (truncated request)".into(),
            ));
        }
        sink(&buf[..n])?;
        remaining -= n as u64;
    }
    Ok(())
}

/// Writes a complete response (status line, headers, `Content-Length`,
/// `Connection: keep-alive|close`, body) and flushes. The explicit
/// `Content-Length` is what makes the connection reusable: the client
/// knows exactly where this response ends and the next may begin.
///
/// # Errors
///
/// Returns the underlying I/O error (the caller usually just drops the
/// connection at that point).
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(w, "HTTP/1.1 {status} {reason}\r\n")?;
    for (name, value) in headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        w,
        "content-length: {}\r\nconnection: {connection}\r\n\r\n",
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn head_of(raw: &str) -> RequestHead {
        read_head(&mut Cursor::new(raw.as_bytes())).unwrap()
    }

    #[test]
    fn parses_request_line_query_and_headers() {
        let h = head_of(
            "POST /v1/anonymize?mechanism=promesse&alpha=100&seed=42 HTTP/1.1\r\n\
             Host: localhost\r\nContent-Length: 12\r\n\r\n",
        );
        assert_eq!(h.method, "POST");
        assert_eq!(h.path, "/v1/anonymize");
        assert_eq!(h.query_param("mechanism"), Some("promesse"));
        assert_eq!(h.query_param("alpha"), Some("100"));
        assert_eq!(h.query_param("seed"), Some("42"));
        assert_eq!(h.header("host"), Some("localhost"));
        assert_eq!(h.framing().unwrap(), BodyFraming::Length(12));
    }

    #[test]
    fn decodes_percent_escapes() {
        let h = head_of("GET /x?a=1%2C2&b=hello+world HTTP/1.1\r\n\r\n");
        assert_eq!(h.query_param("a"), Some("1,2"));
        assert_eq!(h.query_param("b"), Some("hello world"));
        assert!(percent_decode("%zz").is_err());
        assert!(percent_decode("%2").is_err());
        // '%' followed by a multibyte UTF-8 char must error, not panic
        // (the hex window would split the character).
        assert!(percent_decode("%€").is_err());
        assert!(percent_decode("a%é b").is_err());
        // '+' is literal in paths, space only in queries.
        let h = head_of("GET /a+b?q=c+d HTTP/1.1\r\n\r\n");
        assert_eq!(h.path, "/a+b");
        assert_eq!(h.query_param("q"), Some("c d"));
    }

    #[test]
    fn rejects_malformed_heads() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /x HTTP/2.0\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "",
        ] {
            assert!(
                read_head(&mut Cursor::new(raw.as_bytes())).is_err(),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn rejects_oversized_head_with_413() {
        let raw = format!(
            "GET /x HTTP/1.1\r\nx: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        let err = read_head(&mut Cursor::new(raw.as_bytes())).unwrap_err();
        assert_eq!(err.status().0, 413, "oversized head maps to 413");
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let h = head_of("GET /x HTTP/1.1\r\n\r\n");
        assert!(h.keep_alive(), "1.1 defaults to keep-alive");
        let h = head_of("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!h.keep_alive());
        let h = head_of("GET /x HTTP/1.1\r\nConnection: close, te\r\n\r\n");
        assert!(!h.keep_alive(), "token list with close still closes");
        let h = head_of("GET /x HTTP/1.0\r\n\r\n");
        assert!(!h.keep_alive(), "1.0 defaults to close");
        let h = head_of("GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n");
        assert!(h.keep_alive(), "1.0 opts in explicitly");
    }

    #[test]
    fn framing_conflicts_are_rejected() {
        let h =
            head_of("POST /x HTTP/1.1\r\nContent-Length: 3\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert!(h.framing().is_err());
        let h = head_of("POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n");
        assert!(h.framing().is_err());
        let h = head_of("POST /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n");
        assert!(h.framing().is_err());
        let h = head_of("POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 500\r\n\r\n");
        assert!(h.framing().is_err(), "duplicate content-length accepted");
    }

    fn collect_body(raw: &[u8], framing: BodyFraming, max: u64) -> Result<Vec<u8>, ServiceError> {
        let mut out = Vec::new();
        stream_body(&mut Cursor::new(raw), framing, max, |chunk| {
            out.extend_from_slice(chunk);
            Ok(())
        })?;
        Ok(out)
    }

    #[test]
    fn streams_fixed_length_bodies() {
        let body = collect_body(b"hello world", BodyFraming::Length(5), 100).unwrap();
        assert_eq!(body, b"hello");
        assert!(matches!(
            collect_body(b"hi", BodyFraming::Length(5), 100),
            Err(ServiceError::BadRequest(_))
        ));
        assert!(matches!(
            collect_body(b"hello", BodyFraming::Length(5), 4),
            Err(ServiceError::PayloadTooLarge(4))
        ));
    }

    #[test]
    fn streams_chunked_bodies() {
        let raw = b"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let body = collect_body(raw, BodyFraming::Chunked, 100).unwrap();
        assert_eq!(body, b"hello world");
        // Chunk extension + trailer are tolerated.
        let raw = b"b;ext=1\r\nhello world\r\n0\r\nX-Trailer: 1\r\n\r\n";
        assert_eq!(
            collect_body(raw, BodyFraming::Chunked, 100).unwrap(),
            b"hello world"
        );
        // Over-limit chunked bodies are cut off at the cap.
        assert!(matches!(
            collect_body(b"5\r\nhello\r\n0\r\n\r\n", BodyFraming::Chunked, 4),
            Err(ServiceError::PayloadTooLarge(4))
        ));
        assert!(collect_body(b"zz\r\n", BodyFraming::Chunked, 100).is_err());
    }

    #[test]
    fn writes_well_formed_responses() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            200,
            "OK",
            &[("content-type", "text/csv".into())],
            b"a,b\n",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-type: text/csv\r\n"));
        assert!(text.contains("content-length: 4\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\na,b\n"));
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", &[], b"", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("content-length: 0\r\n"));
    }
}
