//! Route dispatch and the endpoint handlers.
//!
//! The serving surface has two shapes:
//!
//! * **one-shot** — `POST /v1/anonymize` carries the dataset in the
//!   request body and answers synchronously (rewired through the
//!   result cache, so identical requests coalesce and repeat hits skip
//!   recomputation entirely);
//! * **publish-once/query-many** — `POST /v1/datasets` registers a
//!   dataset under its content digest, `POST /v1/jobs` submits async
//!   work against a digest, `GET /v1/jobs/:id` polls it and
//!   `GET /v1/results/:key` fetches the finished bytes.
//!
//! Every cacheable response carries `x-mobipriv-cache: hit|miss`.

use std::io::{BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mobipriv_eval::Json;
use mobipriv_model::{
    digest::digest_hex, write_csv, Dataset, DatasetStream, ModelError, WireFormat,
};
use mobipriv_obs::logging::{self, FieldValue};
use mobipriv_obs::metrics::{render_merged, Value};
use mobipriv_obs::trace::{next_trace_id, SpanRecorder};

use crate::cache::{result_key, CacheOutcome, CachedResult};
use crate::compute;
use crate::datasets::Registered;
use crate::http::{
    read_head, stream_body, write_response, BodyFraming, DeadlineReader, NextRequest, RequestHead,
};
use crate::jobs::{JobKind, JobSpec, JobStatus, Submitted};
use crate::registry::{mechanisms_json, resolve_mechanism, Params};
use crate::server::ServerConfig;
use crate::state::AppState;
use crate::ServiceError;

/// Per-read timeout *and* overall deadline while draining unread body
/// after responding: bounds a stalled or trickling client's hold on a
/// worker once its response is on the wire.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(2);

/// How often a parked keep-alive connection re-checks the shutdown
/// flag (and its idle deadline) while waiting for the next request —
/// bounds how long graceful drain waits on idle connections.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// A response body: built for this request, or shared out of the
/// result cache (hits serve the cached bytes without copying them).
enum Body {
    Owned(Vec<u8>),
    Cached(Arc<CachedResult>),
}

impl Body {
    fn bytes(&self) -> &[u8] {
        match self {
            Body::Owned(bytes) => bytes,
            Body::Cached(result) => &result.body,
        }
    }
}

/// A fully materialized response, written in one shot after the handler
/// finishes (so an error can still replace the whole response).
struct Response {
    status: u16,
    reason: &'static str,
    headers: Vec<(&'static str, String)>,
    body: Body,
}

impl Response {
    fn ok(content_type: &str, body: Vec<u8>) -> Response {
        Response {
            status: 200,
            reason: "OK",
            headers: vec![("content-type", content_type.to_owned())],
            body: Body::Owned(body),
        }
    }

    fn json(status: u16, reason: &'static str, doc: &Json) -> Response {
        let mut body = String::new();
        doc.write(&mut body);
        body.push('\n');
        Response {
            status,
            reason,
            headers: vec![("content-type", "application/json".to_owned())],
            body: Body::Owned(body.into_bytes()),
        }
    }

    fn from_error(error: &ServiceError) -> Response {
        let (status, reason) = error.status();
        let mut headers = vec![("content-type", "text/plain".to_owned())];
        if let ServiceError::MethodNotAllowed(allow) = error {
            headers.push(("allow", (*allow).to_owned()));
        }
        if let ServiceError::Overloaded(retry_after_s) = error {
            headers.push(("retry-after", retry_after_s.to_string()));
        }
        Response {
            status,
            reason,
            headers,
            body: Body::Owned(format!("{error}\n").into_bytes()),
        }
    }

    /// A 200 serving a cached result's bytes and computation headers,
    /// plus the cache-outcome marker.
    fn from_cached(result: Arc<CachedResult>, outcome: CacheOutcome) -> Response {
        let mut headers = vec![("content-type", result.content_type.to_owned())];
        for (name, value) in &result.headers {
            headers.push((name, value.clone()));
        }
        headers.push(("x-mobipriv-cache", outcome.header_value().to_owned()));
        headers.push(("x-mobipriv-key", result_key(&result.canonical)));
        Response {
            status: 200,
            reason: "OK",
            headers,
            body: Body::Cached(result),
        }
    }
}

/// Serves one connection end to end: parse, route, respond — then, on
/// a keep-alive connection, parks for the next request and repeats.
/// All request errors become status-mapped responses (always with
/// `connection: close`, so an error can never desync the stream);
/// I/O failures while responding are dropped with the connection.
///
/// The connection is reused only when all of these hold: the client
/// asked for it ([`RequestHead::keep_alive`]), the response was a
/// success, the declared body was fully consumed (leftover bytes would
/// be parsed as the next head), the per-connection request cap has not
/// been reached, and the server is not draining for shutdown.
pub fn handle_connection(
    stream: TcpStream,
    config: &ServerConfig,
    state: &AppState,
    shutdown: &AtomicBool,
) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_owned());
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // Each request (head + body) gets one wall-clock budget: per-read
    // socket timeouts reset on every byte, so without this a trickling
    // client could hold the worker indefinitely.
    let mut reader = DeadlineReader::new(BufReader::new(read_half), config.timeout);
    let mut writer = stream;
    let mut served: usize = 0;
    loop {
        let started = Instant::now();
        // One trace per request, carried through the handler → cache →
        // compute chain; the id always reaches the client via
        // `x-mobipriv-trace`, whether or not the timeline is sampled.
        let rec = SpanRecorder::new(next_trace_id());
        let parse_start = Instant::now();
        let next = if served == 0 {
            // The acceptor queued this connection because a request is
            // (presumably) already on its way: read it directly under
            // the ordinary request budget, as a fresh connection always
            // did.
            reader.set_deadline(config.timeout);
            read_head(&mut reader).map(NextRequest::Head)
        } else {
            reader.next_request(config.idle_timeout, IDLE_POLL, config.timeout, shutdown)
        };
        rec.record("parse", parse_start);
        let (mut response, keep) = match next {
            Ok(NextRequest::Head(head)) => {
                // Clients that announce `Expect: 100-continue` (curl
                // does for any body over 1 KiB) hold the body back
                // until the interim response arrives — without it they
                // stall ~1 s per request, or forever if strict.
                if head
                    .header("expect")
                    .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
                {
                    let _ = writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
                    let _ = writer.flush();
                }
                let framing = head.framing();
                let consumed_before = reader.bytes_read();
                let response = route(&head, &mut reader, config, state, &rec, &peer)
                    .unwrap_or_else(|e| Response::from_error(&e));
                // Reuse demands the stream be positioned exactly at the
                // next request head. A fixed-length body the handler
                // ignored could be drained here, but closing is just as
                // correct and far simpler to reason about; a chunked
                // body's consumption is only known if the handler
                // actually streamed it to the terminator (any 2xx did).
                let consumed = reader.bytes_read() - consumed_before;
                let body_clean = match framing {
                    Ok(BodyFraming::None) => true,
                    Ok(BodyFraming::Length(n)) => consumed >= n,
                    Ok(BodyFraming::Chunked) => consumed > 0 && response.status < 300,
                    Err(_) => false,
                };
                served += 1;
                let keep = head.keep_alive()
                    && response.status < 400
                    && body_clean
                    && served < config.max_requests_per_conn
                    && !shutdown.load(Ordering::SeqCst);
                (response, keep)
            }
            // Nothing arrived: no response owed, nothing to record.
            Ok(NextRequest::Closed | NextRequest::IdleTimeout | NextRequest::Drain) => break,
            Err(e) => (Response::from_error(&e), false),
        };
        response
            .headers
            .push(("x-mobipriv-trace", rec.id().to_owned()));
        if response.status == 408 {
            state.metrics.client_timeouts_total.inc();
        }
        let write_start = Instant::now();
        let io = write_response(
            &mut writer,
            response.status,
            response.reason,
            &response.headers,
            response.body.bytes(),
            keep,
        );
        rec.record("write", write_start);
        state
            .metrics
            .record_request(response.status, started.elapsed());
        state.metrics.record_spans(&rec);
        state.traces.store(&rec);
        if !keep || io.is_err() {
            break;
        }
    }
    // Half-close, then drain any unread body (bounded by the body limit
    // plus slack, and by an overall wall-clock deadline): dropping the
    // socket with bytes still in the receive buffer makes the kernel
    // send RST, which can discard the response (typically an early
    // 400/413) before the client reads it. The FIN goes out first so a
    // client that waits for the response before closing is never
    // deadlocked against the drain.
    let drain_limit = config.max_body_bytes.saturating_add(1024 * 1024);
    let _ = writer.shutdown(Shutdown::Write);
    let _ = reader
        .get_ref()
        .get_ref()
        .set_read_timeout(Some(DRAIN_TIMEOUT));
    // Drain from the inner reader: the request deadline may already
    // have passed, but the drain carries its own (short) budget.
    crate::http::drain(reader.get_mut(), drain_limit, DRAIN_TIMEOUT);
}

/// `GET /healthz` — liveness *and* readiness. Always `200` while the
/// process serves (liveness for the smoke scripts' `curl -fsS`); the
/// body distinguishes `ready` from `degraded` (breaker open or accept
/// queue past the watermark — cache hits still serve, cold computes are
/// shed with `503` + `Retry-After`).
fn healthz(state: &AppState) -> Response {
    let body = if state.degraded() {
        "degraded\n"
    } else {
        "ready\n"
    };
    Response::ok("text/plain", body.as_bytes().to_vec())
}

/// The optional `timeout_ms` query parameter: the client's requested
/// compute budget, validated here and clamped to the configured ceiling
/// at use.
fn timeout_ms(params: Params<'_>) -> Result<Option<u64>, ServiceError> {
    match params.get("timeout_ms") {
        None => Ok(None),
        Some(_) => Ok(Some(params.parse_or("timeout_ms", 0)?)),
    }
}

fn route(
    head: &RequestHead,
    reader: &mut DeadlineReader<BufReader<TcpStream>>,
    config: &ServerConfig,
    state: &AppState,
    rec: &SpanRecorder,
    peer: &str,
) -> Result<Response, ServiceError> {
    match (head.method.as_str(), head.path.as_str()) {
        ("GET", "/healthz") => Ok(healthz(state)),
        ("GET", "/metrics") => Ok(metrics_text(state)),
        ("GET", "/v1/mechanisms") => Ok(Response::ok(
            "application/json",
            mechanisms_json().into_bytes(),
        )),
        ("GET", "/v1/evaluate") => evaluate(head),
        ("GET", "/v1/stats") => Ok(stats(state)),
        ("POST", "/v1/anonymize") => anonymize(head, reader, config, state, rec, peer),
        ("POST", "/v1/datasets") => register_dataset(head, reader, config, state, rec, peer),
        ("GET", "/v1/datasets") => Ok(list_datasets(state)),
        ("POST", "/v1/jobs") => submit_job(head, state),
        ("GET", "/v1/jobs") => Ok(list_jobs(state)),
        ("GET", path) if path.strip_prefix("/v1/datasets/").is_some() => {
            dataset_meta(path.strip_prefix("/v1/datasets/").expect("guarded"), state)
        }
        ("GET", path) if path.strip_prefix("/v1/jobs/").is_some() => {
            job_status(path.strip_prefix("/v1/jobs/").expect("guarded"), state)
        }
        ("GET", path) if path.strip_prefix("/v1/results/").is_some() => {
            fetch_result(path.strip_prefix("/v1/results/").expect("guarded"), state)
        }
        ("GET", path) if path.strip_prefix("/v1/traces/").is_some() => {
            trace_detail(path.strip_prefix("/v1/traces/").expect("guarded"), state)
        }
        (_, "/healthz" | "/metrics" | "/v1/mechanisms" | "/v1/evaluate" | "/v1/stats") => {
            Err(ServiceError::MethodNotAllowed("GET"))
        }
        (_, "/v1/anonymize") => Err(ServiceError::MethodNotAllowed("POST")),
        (_, "/v1/datasets" | "/v1/jobs") => Err(ServiceError::MethodNotAllowed("GET, POST")),
        (_, path) if path.starts_with("/v1/datasets/") || path.starts_with("/v1/jobs/") => {
            Err(ServiceError::MethodNotAllowed("GET"))
        }
        (_, path) if path.starts_with("/v1/results/") || path.starts_with("/v1/traces/") => {
            Err(ServiceError::MethodNotAllowed("GET"))
        }
        (_, path) => Err(ServiceError::NotFound(path.to_owned())),
    }
}

/// Streams and parses a request body into a dataset. Parse rejections
/// (the 400s) are logged as structured warnings carrying the trace id,
/// the byte offset of the offending line or frame and the remote peer —
/// enough to find the bad row in the client's upload without replaying
/// it.
fn read_body_dataset(
    head: &RequestHead,
    reader: &mut DeadlineReader<BufReader<TcpStream>>,
    config: &ServerConfig,
    rec: &SpanRecorder,
    peer: &str,
) -> Result<(Dataset, u64), ServiceError> {
    let format = body_format(head)?;
    let framing = head.framing()?;
    let parse_start = Instant::now();
    let mut stream = DatasetStream::new(format);
    let received = stream_body(reader, framing, config.max_body_bytes, |chunk| {
        stream
            .push_chunk(chunk)
            .map_err(|e| parse_reject(e, rec, peer))
    })?;
    let dataset = stream.finish().map_err(|e| parse_reject(e, rec, peer))?;
    rec.record("parse", parse_start);
    Ok((dataset, received))
}

/// Converts a body-parse failure into its `ServiceError` (a 400) while
/// emitting the structured warning operators grep for.
fn parse_reject(error: ModelError, rec: &SpanRecorder, peer: &str) -> ServiceError {
    let offset = match &error {
        ModelError::Parse { offset, .. } | ModelError::BinParse { offset, .. } => *offset as u64,
        _ => 0,
    };
    logging::warn(
        "service::handlers",
        Some(rec.id()),
        "rejecting request body: parse error",
        &[
            ("peer", FieldValue::Str(peer)),
            ("offset", FieldValue::U64(offset)),
            ("error", FieldValue::Str(&error.to_string())),
        ],
    );
    ServiceError::from(error)
}

/// `POST /v1/anonymize?mechanism=…[&seed=…][&dataset=…][&format=…][&report=1]`
///
/// The input is either the request body (CSV, NDJSON or binary `bin`
/// trace rows; fixed-length or chunked) or, with `dataset=<digest>`, a
/// dataset previously registered via `POST /v1/datasets` (no body).
/// `format=bin` also switches the *response* to the compact binary
/// frames (`application/octet-stream`); the text formats answer in
/// canonical CSV as always. Responses are a pure function of `(input
/// content, canonical mechanism parameters, seed, response format)` —
/// which is exactly the result-cache key, so repeated and concurrent
/// identical requests are served from one computation with
/// byte-identical bodies (`x-mobipriv-cache` says which happened).
fn anonymize(
    head: &RequestHead,
    reader: &mut DeadlineReader<BufReader<TcpStream>>,
    config: &ServerConfig,
    state: &AppState,
    rec: &SpanRecorder,
    peer: &str,
) -> Result<Response, ServiceError> {
    let params = Params(&head.query);
    let resolved = resolve_mechanism(params)?;
    let seed: u64 = params.parse_or("seed", 0)?;
    let report = wants_report(params);
    let budget = state.resilience.clamp_budget(timeout_ms(params)?);
    // `format=bin` selects binary for both directions; the text formats
    // all answer in canonical CSV (the historical contract).
    let wire = match body_format(head)? {
        WireFormat::Bin => WireFormat::Bin,
        _ => WireFormat::Csv,
    };

    let (dataset, digest, received): (Arc<Dataset>, String, u64) =
        if let Some(digest) = params.get("dataset") {
            let entry = state.datasets.get(digest).ok_or_else(|| {
                ServiceError::NotFound(format!("/v1/datasets/{digest} (register it first)"))
            })?;
            (Arc::clone(&entry.dataset), entry.digest.clone(), 0)
        } else {
            let (dataset, received) = read_body_dataset(head, reader, config, rec, peer)?;
            // Digest the *canonical* serialization: CSV, NDJSON and
            // chunked uploads of the same data share one cache entry.
            let digest_start = Instant::now();
            let mut canonical = Vec::new();
            write_csv(&dataset, &mut canonical)
                .map_err(|e| ServiceError::Internal(format!("canonicalizing input: {e}")))?;
            let digest = digest_hex(&canonical);
            rec.record("digest", digest_start);
            (Arc::new(dataset), digest, received)
        };

    let key = compute::canonical_key(
        "anonymize",
        &digest,
        &resolved.canonical,
        seed,
        report,
        wire,
    );
    let lookup_start = Instant::now();
    let (result, outcome) = state.results.get_or_compute(&key, || {
        state.guarded_compute(&key, budget, |cancel| {
            compute::anonymize_result(
                &key,
                &dataset,
                resolved.mechanism.as_ref(),
                &resolved.canonical,
                seed,
                report,
                wire,
                &state.engine,
                cancel,
                &|_| {},
                rec,
            )
        })
    })?;
    rec.record("cache_lookup", lookup_start);
    let mut response = Response::from_cached(result, outcome);
    response
        .headers
        .push(("x-mobipriv-body-bytes", received.to_string()));
    Ok(response)
}

/// `POST /v1/datasets[?format=csv|ndjson|bin]` — register-once ingestion.
///
/// Parses the body through the streaming reader, stores it under the
/// digest of its canonical CSV form and reports the digest. The digest
/// is format-independent: CSV, NDJSON and Bin uploads of the same data
/// register the same entry. Re-uploads of the same content are
/// idempotent (`registered: "exists"`).
fn register_dataset(
    head: &RequestHead,
    reader: &mut DeadlineReader<BufReader<TcpStream>>,
    config: &ServerConfig,
    state: &AppState,
    rec: &SpanRecorder,
    peer: &str,
) -> Result<Response, ServiceError> {
    let (dataset, received) = read_body_dataset(head, reader, config, rec, peer)?;
    if dataset.is_empty() {
        return Err(ServiceError::BadRequest(
            "dataset body is empty (nothing to register)".into(),
        ));
    }
    let Some((entry, registered)) = state.datasets.register(dataset) else {
        // A single dataset larger than the whole registry budget.
        return Err(ServiceError::PayloadTooLarge(state.datasets.max_bytes()));
    };
    let doc = Json::Obj(vec![
        ("digest".into(), Json::Str(entry.digest.clone())),
        (
            "registered".into(),
            Json::Str(
                match registered {
                    Registered::New => "new",
                    Registered::Exists => "exists",
                }
                .into(),
            ),
        ),
        ("traces".into(), Json::UInt(entry.traces as u64)),
        ("fixes".into(), Json::UInt(entry.fixes)),
        ("bytes".into(), Json::UInt(entry.bytes)),
        ("received_bytes".into(), Json::UInt(received)),
    ]);
    let mut response = Response::json(200, "OK", &doc);
    response
        .headers
        .push(("x-mobipriv-digest", entry.digest.clone()));
    Ok(response)
}

fn dataset_json(entry: &crate::datasets::DatasetEntry) -> Json {
    Json::Obj(vec![
        ("digest".into(), Json::Str(entry.digest.clone())),
        ("traces".into(), Json::UInt(entry.traces as u64)),
        ("fixes".into(), Json::UInt(entry.fixes)),
        ("bytes".into(), Json::UInt(entry.bytes)),
    ])
}

/// `GET /v1/datasets` — the registry listing, most recently used first.
fn list_datasets(state: &AppState) -> Response {
    let entries: Vec<Json> = state
        .datasets
        .list()
        .iter()
        .map(|e| dataset_json(e))
        .collect();
    Response::json(200, "OK", &Json::Arr(entries))
}

/// `GET /v1/datasets/:digest` — one registered dataset's metadata.
fn dataset_meta(digest: &str, state: &AppState) -> Result<Response, ServiceError> {
    let entry = state
        .datasets
        .get(digest)
        .ok_or_else(|| ServiceError::NotFound(format!("/v1/datasets/{digest}")))?;
    Ok(Response::json(200, "OK", &dataset_json(&entry)))
}

/// `POST /v1/jobs?dataset=…&mechanism=…[&kind=anonymize|evaluate][&seed=…][&report=1]`
///
/// Submits async work against a registered dataset. The job id is the
/// content address of the work — identical submissions coalesce onto
/// one job and one computation. Answers `202 Accepted` while the job
/// is queued or running, `200` when the result is already available.
fn submit_job(head: &RequestHead, state: &AppState) -> Result<Response, ServiceError> {
    let params = Params(&head.query);
    let digest = params
        .get("dataset")
        .ok_or_else(|| ServiceError::BadRequest("missing required parameter `dataset`".into()))?;
    let entry = state.datasets.get(digest).ok_or_else(|| {
        ServiceError::NotFound(format!("/v1/datasets/{digest} (register it first)"))
    })?;
    let kind = match params.get("kind").unwrap_or("anonymize") {
        "anonymize" => JobKind::Anonymize,
        "evaluate" => JobKind::Evaluate,
        other => {
            return Err(ServiceError::BadRequest(format!(
                "invalid value `{other}` for parameter `kind` (expected anonymize|evaluate)"
            )))
        }
    };
    let resolved = resolve_mechanism(params)?; // validates before enqueueing
    let seed: u64 = params.parse_or("seed", 0)?;
    let report = kind == JobKind::Anonymize && wants_report(params);
    let timeout_ms = timeout_ms(params)?;
    // Jobs always materialize the canonical CSV body; a Bin rendering
    // of the same result is a separate one-shot request.
    let canonical = compute::canonical_key(
        kind.name(),
        &entry.digest,
        &resolved.canonical,
        seed,
        report,
        WireFormat::Csv,
    );
    let spec = JobSpec {
        kind,
        dataset: entry,
        query: head.query.clone(),
        mechanism_canonical: resolved.canonical,
        seed,
        report,
        canonical,
        timeout_ms,
    };
    // Warm shortcut: a result that is already cached answers `done`
    // without a queue round trip. When it is *not* cached, tell the
    // board so — a stale `done` record whose body was LRU-evicted must
    // be replaced and recomputed, not coalesced onto.
    let (job, submitted) = if state.results.lookup(&result_key(&spec.canonical)).is_some() {
        state.jobs.insert_done(spec)
    } else {
        state.jobs.submit(spec, /* result_evicted= */ true)?
    };
    let done = job.status() == JobStatus::Done;
    let mut doc = match job.to_json() {
        Json::Obj(members) => members,
        _ => unreachable!("job status document is an object"),
    };
    doc.push((
        "submitted".into(),
        Json::Str(
            match submitted {
                Submitted::Enqueued => "enqueued",
                Submitted::Coalesced => "coalesced",
                Submitted::Cached => "cached",
            }
            .into(),
        ),
    ));
    let doc = Json::Obj(doc);
    Ok(if done {
        Response::json(200, "OK", &doc)
    } else {
        Response::json(202, "Accepted", &doc)
    })
}

/// `GET /v1/jobs` — every live job record.
fn list_jobs(state: &AppState) -> Response {
    let jobs: Vec<Json> = state.jobs.list().iter().map(|j| j.to_json()).collect();
    Response::json(200, "OK", &Json::Arr(jobs))
}

/// `GET /v1/jobs/:id` — one job's status document.
fn job_status(id: &str, state: &AppState) -> Result<Response, ServiceError> {
    let job = state
        .jobs
        .get(id)
        .ok_or_else(|| ServiceError::NotFound(format!("/v1/jobs/{id}")))?;
    Ok(Response::json(200, "OK", &job.to_json()))
}

/// `GET /v1/results/:key` — the finished bytes for a content address.
///
/// `200` with the body when the result is cached; `202` with the job's
/// status document while the job is still queued/running; `404` for an
/// address nothing is computing; the job's error for a failed job.
fn fetch_result(key: &str, state: &AppState) -> Result<Response, ServiceError> {
    if let Some(result) = state.results.lookup(key) {
        return Ok(Response::from_cached(result, CacheOutcome::Hit));
    }
    match state.jobs.get(key) {
        Some(job) => match job.status() {
            JobStatus::Done => {
                // Done but evicted from the cache since: gone.
                Err(ServiceError::NotFound(format!(
                    "/v1/results/{key} (evicted; resubmit the job)"
                )))
            }
            JobStatus::Failed => Err(ServiceError::Internal(format!(
                "job {key} failed (see /v1/jobs/{key})"
            ))),
            JobStatus::Queued | JobStatus::Running => {
                Ok(Response::json(202, "Accepted", &job.to_json()))
            }
        },
        None => Err(ServiceError::NotFound(format!("/v1/results/{key}"))),
    }
}

/// `GET /metrics` — the Prometheus text exposition of the per-server
/// registry merged with the process-global engine/eval registry. Gauges
/// are refreshed from their owning components at scrape time, so this
/// endpoint and `/v1/stats` always agree.
fn metrics_text(state: &AppState) -> Response {
    state.refresh_gauges();
    let text = render_merged(&[&state.metrics.registry, mobipriv_obs::global()]);
    Response::ok("text/plain; version=0.0.4", text.into_bytes())
}

/// `GET /v1/traces/:id` — one stored span timeline, as recorded for the
/// trace id a response's `x-mobipriv-trace` header (or a job document's
/// `trace` field) named. Timelines live in a bounded ring buffer, so
/// old ids age out (`404`).
fn trace_detail(id: &str, state: &AppState) -> Result<Response, ServiceError> {
    let stored = state
        .traces
        .get(id)
        .ok_or_else(|| ServiceError::NotFound(format!("/v1/traces/{id}")))?;
    let spans: Vec<Json> = stored
        .spans
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("stage".into(), Json::Str(s.stage.to_owned())),
                ("start_us".into(), Json::UInt(s.start_us)),
                ("dur_us".into(), Json::UInt(s.dur_us)),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("id".into(), Json::Str(stored.id.clone())),
        ("spans".into(), Json::Arr(spans)),
    ]);
    Ok(Response::json(200, "OK", &doc))
}

/// The registry snapshot as a flat JSON object (`name{labels}` keys),
/// embedded in `/v1/stats` so JSON-speaking clients get the full metric
/// set without parsing the Prometheus text format.
fn metrics_json(state: &AppState) -> Json {
    let mut samples = state.metrics.registry.snapshot();
    samples.extend(mobipriv_obs::global().snapshot());
    let members = samples
        .into_iter()
        .map(|sample| {
            let mut key = sample.name;
            if !sample.labels.is_empty() {
                key.push('{');
                for (i, (name, value)) in sample.labels.iter().enumerate() {
                    if i > 0 {
                        key.push(',');
                    }
                    key.push_str(name);
                    key.push('=');
                    key.push_str(value);
                }
                key.push('}');
            }
            let value = match sample.value {
                Value::Counter(v) => Json::UInt(v),
                Value::Gauge(v) if v >= 0 => Json::UInt(v as u64),
                Value::Gauge(v) => Json::Num(v as f64),
                Value::Histogram(h) => Json::Obj(vec![
                    ("count".into(), Json::UInt(h.count)),
                    ("sum_seconds".into(), Json::Num(h.sum_seconds())),
                ]),
            };
            (key, value)
        })
        .collect();
    Json::Obj(members)
}

/// `GET /v1/stats` — registry/cache/job counters, including the
/// single-flight computation counter the stress tests assert on. The
/// historical top-level fields read the same registry handles as
/// `GET /metrics` (one source of truth); the `metrics` member embeds
/// the full snapshot for JSON-speaking clients.
fn stats(state: &AppState) -> Response {
    state.refresh_gauges();
    let (dataset_count, dataset_bytes) = state.datasets.stats();
    let (result_count, result_bytes) = state.results.stats();
    let (hits, misses) = state.results.hit_miss();
    let (queued, running, done, failed) = state.jobs.counts();
    let mut members = vec![
        (
            "computations".into(),
            Json::UInt(state.results.computations()),
        ),
        ("cache_hits".into(), Json::UInt(hits)),
        ("cache_misses".into(), Json::UInt(misses)),
        (
            "datasets".into(),
            Json::Obj(vec![
                ("count".into(), Json::UInt(dataset_count as u64)),
                ("bytes".into(), Json::UInt(dataset_bytes)),
            ]),
        ),
        (
            "results".into(),
            Json::Obj(vec![
                ("count".into(), Json::UInt(result_count as u64)),
                ("bytes".into(), Json::UInt(result_bytes)),
            ]),
        ),
        (
            "jobs".into(),
            Json::Obj(vec![
                ("queued".into(), Json::UInt(queued as u64)),
                ("running".into(), Json::UInt(running as u64)),
                ("done".into(), Json::UInt(done as u64)),
                ("failed".into(), Json::UInt(failed as u64)),
            ]),
        ),
    ];
    if let Some(store) = &state.store {
        let s = store.stats();
        members.push((
            "store".into(),
            Json::Obj(vec![
                ("blobs".into(), Json::UInt(s.blobs)),
                ("blob_bytes".into(), Json::UInt(s.blob_bytes)),
                ("journal_bytes".into(), Json::UInt(s.journal_bytes)),
                ("journal_records".into(), Json::UInt(s.journal_records)),
                ("quarantined".into(), Json::UInt(s.quarantined)),
            ]),
        ));
    }
    members.push(("metrics".into(), metrics_json(state)));
    let doc = Json::Obj(members);
    Response::json(200, "OK", &doc)
}

/// `GET /v1/evaluate[?preset=smoke|full][&scenario=…][&mechanism=…][&seed=…][&timings=1]`
///
/// Runs the evaluation matrix (mechanisms × scenarios × attacks ×
/// utility metrics) on synthetic workloads and returns the
/// schema-versioned JSON [`mobipriv_eval::EvalReport`]. The response is
/// a pure function of the query parameters — the same plan always
/// produces byte-identical JSON, the same contract `mobipriv-eval`
/// honours on the command line. The one opt-out is `timings=1`, which
/// appends each cell's `wall_ms` so callers can see where the time
/// goes; timed bodies are inherently not byte-stable across runs.
///
/// `scenario` and `mechanism` filter the plan to one row/column (ids as
/// listed by `mobipriv-eval --help`); `seed` replaces the plan's seed
/// axis. The unfiltered `full` preset runs for minutes — filter it, or
/// use the CLI for bulk runs.
fn evaluate(head: &RequestHead) -> Result<Response, ServiceError> {
    let params = Params(&head.query);
    let mut plan = match params.get("preset").unwrap_or("smoke") {
        "smoke" => mobipriv_eval::EvalPlan::smoke(),
        "full" => mobipriv_eval::EvalPlan::full(),
        other => {
            return Err(ServiceError::BadRequest(format!(
                "invalid value `{other}` for parameter `preset` (expected smoke|full)"
            )))
        }
    };
    if let Some(name) = params.get("scenario") {
        plan = plan.with_scenario(name).ok_or_else(|| {
            ServiceError::BadRequest(format!(
                "unknown scenario `{name}` for parameter `scenario`"
            ))
        })?;
    }
    if let Some(id) = params.get("mechanism") {
        plan = plan.with_mechanism(id).ok_or_else(|| {
            ServiceError::BadRequest(format!(
                "unknown mechanism `{id}` for parameter `mechanism`"
            ))
        })?;
    }
    if params.get("seed").is_some() {
        plan = plan.with_seed(params.parse_or("seed", 0)?);
    }
    let timings = match params.get("timings") {
        None | Some("0") => false,
        Some("1") => true,
        Some(other) => {
            return Err(ServiceError::BadRequest(format!(
                "invalid value `{other}` for parameter `timings` (expected 0|1)"
            )))
        }
    };
    let report = mobipriv_eval::evaluate(&plan);
    let headers = vec![
        ("content-type", "application/json".to_owned()),
        ("x-mobipriv-eval-cells", report.cells.len().to_string()),
        ("x-mobipriv-eval-plan", report.plan.clone()),
    ];
    let body = if timings {
        report.to_json_timed()
    } else {
        report.to_json()
    };
    Ok(Response {
        status: 200,
        reason: "OK",
        headers,
        body: Body::Owned(body.into_bytes()),
    })
}

pub(crate) fn body_format(head: &RequestHead) -> Result<WireFormat, ServiceError> {
    if let Some(fmt) = Params(&head.query).get("format") {
        return match fmt {
            "csv" => Ok(WireFormat::Csv),
            "ndjson" => Ok(WireFormat::NdJson),
            "bin" => Ok(WireFormat::Bin),
            other => Err(ServiceError::BadRequest(format!(
                "invalid value `{other}` for parameter `format` (expected csv|ndjson|bin)"
            ))),
        };
    }
    match head.header("content-type") {
        Some(ct) if ct.contains("ndjson") || ct.contains("jsonl") => Ok(WireFormat::NdJson),
        Some(ct) if ct.contains("octet-stream") => Ok(WireFormat::Bin),
        _ => Ok(WireFormat::Csv),
    }
}

fn wants_report(params: Params<'_>) -> bool {
    matches!(params.get("report"), Some("1" | "true" | "utility"))
}
