//! Route dispatch and the anonymize endpoint.

use std::io::{BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use mobipriv_metrics::{coverage, spatial};
use mobipriv_model::{write_csv, DatasetStream, WireFormat};

use crate::http::{read_head, stream_body, write_response, DeadlineReader, RequestHead};
use crate::registry::{build_mechanism, mechanisms_json, Params};
use crate::server::ServerConfig;
use crate::ServiceError;

/// Grid-cell size used by the optional coverage report, meters.
const REPORT_CELL_M: f64 = 250.0;

/// Per-read timeout *and* overall deadline while draining unread body
/// after responding: bounds a stalled or trickling client's hold on a
/// worker once its response is on the wire.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(2);

/// A fully materialized response, written in one shot after the handler
/// finishes (so an error can still replace the whole response).
struct Response {
    status: u16,
    reason: &'static str,
    headers: Vec<(&'static str, String)>,
    body: Vec<u8>,
}

impl Response {
    fn ok(content_type: &str, body: Vec<u8>) -> Response {
        Response {
            status: 200,
            reason: "OK",
            headers: vec![("content-type", content_type.to_owned())],
            body,
        }
    }

    fn from_error(error: &ServiceError) -> Response {
        let (status, reason) = error.status();
        let mut headers = vec![("content-type", "text/plain".to_owned())];
        if let ServiceError::MethodNotAllowed(allow) = error {
            headers.push(("allow", (*allow).to_owned()));
        }
        Response {
            status,
            reason,
            headers,
            body: format!("{error}\n").into_bytes(),
        }
    }
}

/// Serves one connection end to end: parse, route, respond. All errors
/// become status-mapped responses; I/O failures while responding are
/// dropped with the connection.
pub fn handle_connection(stream: TcpStream, config: &ServerConfig) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // The whole request (head + body) shares one wall-clock budget:
    // per-read socket timeouts reset on every byte, so without this a
    // trickling client could hold the worker indefinitely.
    let mut reader = DeadlineReader::new(BufReader::new(read_half), config.timeout);
    let mut writer = stream;
    let response = match read_head(&mut reader) {
        Ok(head) => {
            // Clients that announce `Expect: 100-continue` (curl does
            // for any body over 1 KiB) hold the body back until the
            // interim response arrives — without it they stall ~1 s
            // per request, or forever if strict.
            if head
                .header("expect")
                .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
            {
                let _ = writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
                let _ = writer.flush();
            }
            route(&head, &mut reader, config).unwrap_or_else(|e| Response::from_error(&e))
        }
        Err(e) => Response::from_error(&e),
    };
    let _ = write_response(
        &mut writer,
        response.status,
        response.reason,
        &response.headers,
        &response.body,
    );
    // Half-close, then drain any unread body (bounded by the body limit
    // plus slack, and by an overall wall-clock deadline): dropping the
    // socket with bytes still in the receive buffer makes the kernel
    // send RST, which can discard the response (typically an early
    // 400/413) before the client reads it. The FIN goes out first so a
    // client that waits for the response before closing is never
    // deadlocked against the drain.
    let drain_limit = config.max_body_bytes.saturating_add(1024 * 1024);
    let _ = writer.shutdown(Shutdown::Write);
    let _ = reader
        .get_ref()
        .get_ref()
        .set_read_timeout(Some(DRAIN_TIMEOUT));
    // Drain from the inner reader: the request deadline may already
    // have passed, but the drain carries its own (short) budget.
    crate::http::drain(reader.get_mut(), drain_limit, DRAIN_TIMEOUT);
}

fn route(
    head: &RequestHead,
    reader: &mut DeadlineReader<BufReader<TcpStream>>,
    config: &ServerConfig,
) -> Result<Response, ServiceError> {
    match (head.method.as_str(), head.path.as_str()) {
        ("GET", "/healthz") => Ok(Response::ok("text/plain", b"ok\n".to_vec())),
        ("GET", "/v1/mechanisms") => Ok(Response::ok(
            "application/json",
            mechanisms_json().into_bytes(),
        )),
        ("GET", "/v1/evaluate") => evaluate(head),
        ("POST", "/v1/anonymize") => anonymize(head, reader, config),
        (_, "/healthz" | "/v1/mechanisms" | "/v1/evaluate") => {
            Err(ServiceError::MethodNotAllowed("GET"))
        }
        (_, "/v1/anonymize") => Err(ServiceError::MethodNotAllowed("POST")),
        (_, path) => Err(ServiceError::NotFound(path.to_owned())),
    }
}

/// `POST /v1/anonymize?mechanism=…[&seed=…][&format=csv|ndjson][&report=1]`
///
/// The body (CSV or NDJSON trace rows; fixed-length or chunked) streams
/// through the incremental dataset reader, runs through the engine under
/// the request seed, and comes back as CSV. Responses are a pure
/// function of `(body, mechanism parameters, seed)` — the determinism
/// contract the integration tests assert against the batch engine.
fn anonymize(
    head: &RequestHead,
    reader: &mut DeadlineReader<BufReader<TcpStream>>,
    config: &ServerConfig,
) -> Result<Response, ServiceError> {
    let params = Params(&head.query);
    let mechanism = build_mechanism(params)?;
    let seed: u64 = params.parse_or("seed", 0)?;
    let format = body_format(head)?;
    let framing = head.framing()?;

    let mut stream = DatasetStream::new(format);
    let received = stream_body(reader, framing, config.max_body_bytes, |chunk| {
        stream.push_chunk(chunk).map_err(ServiceError::from)
    })?;
    let input = stream.finish()?;

    let output = config.engine.protect(mechanism.as_ref(), &input, seed);

    let mut body = Vec::new();
    write_csv(&output, &mut body)
        .map_err(|e| ServiceError::Internal(format!("serializing response: {e}")))?;

    let mut headers = vec![
        ("content-type", "text/csv".to_owned()),
        (
            "x-mobipriv-mechanism",
            params.get("mechanism").unwrap_or("?").to_owned(),
        ),
        ("x-mobipriv-seed", seed.to_string()),
        ("x-mobipriv-body-bytes", received.to_string()),
        ("x-mobipriv-input-traces", input.len().to_string()),
        ("x-mobipriv-input-fixes", input.total_fixes().to_string()),
        ("x-mobipriv-output-traces", output.len().to_string()),
        ("x-mobipriv-output-fixes", output.total_fixes().to_string()),
    ];
    if wants_report(params) {
        // Label-agnostic distortion: mechanisms may relabel users, which
        // would break per-user matching.
        let distortion = spatial::dataset_distortion_anonymous(&input, &output);
        let cover = coverage::coverage(&input, &output, REPORT_CELL_M);
        headers.push((
            "x-mobipriv-distortion-mean-m",
            format!("{:.3}", distortion.mean),
        ));
        headers.push((
            "x-mobipriv-distortion-median-m",
            format!("{:.3}", distortion.median),
        ));
        headers.push((
            "x-mobipriv-distortion-p95-m",
            format!("{:.3}", distortion.p95),
        ));
        headers.push((
            "x-mobipriv-distortion-max-m",
            format!("{:.3}", distortion.max),
        ));
        headers.push(("x-mobipriv-coverage-f1", format!("{:.4}", cover.f1)));
    }
    Ok(Response {
        status: 200,
        reason: "OK",
        headers,
        body,
    })
}

/// `GET /v1/evaluate[?preset=smoke|full][&scenario=…][&mechanism=…][&seed=…][&timings=1]`
///
/// Runs the evaluation matrix (mechanisms × scenarios × attacks ×
/// utility metrics) on synthetic workloads and returns the
/// schema-versioned JSON [`mobipriv_eval::EvalReport`]. The response is
/// a pure function of the query parameters — the same plan always
/// produces byte-identical JSON, the same contract `mobipriv-eval`
/// honours on the command line. The one opt-out is `timings=1`, which
/// appends each cell's `wall_ms` so callers can see where the time
/// goes; timed bodies are inherently not byte-stable across runs.
///
/// `scenario` and `mechanism` filter the plan to one row/column (ids as
/// listed by `mobipriv-eval --help`); `seed` replaces the plan's seed
/// axis. The unfiltered `full` preset runs for minutes — filter it, or
/// use the CLI for bulk runs.
fn evaluate(head: &RequestHead) -> Result<Response, ServiceError> {
    let params = Params(&head.query);
    let mut plan = match params.get("preset").unwrap_or("smoke") {
        "smoke" => mobipriv_eval::EvalPlan::smoke(),
        "full" => mobipriv_eval::EvalPlan::full(),
        other => {
            return Err(ServiceError::BadRequest(format!(
                "invalid value `{other}` for parameter `preset` (expected smoke|full)"
            )))
        }
    };
    if let Some(name) = params.get("scenario") {
        plan = plan.with_scenario(name).ok_or_else(|| {
            ServiceError::BadRequest(format!(
                "unknown scenario `{name}` for parameter `scenario`"
            ))
        })?;
    }
    if let Some(id) = params.get("mechanism") {
        plan = plan.with_mechanism(id).ok_or_else(|| {
            ServiceError::BadRequest(format!(
                "unknown mechanism `{id}` for parameter `mechanism`"
            ))
        })?;
    }
    if params.get("seed").is_some() {
        plan = plan.with_seed(params.parse_or("seed", 0)?);
    }
    let timings = match params.get("timings") {
        None | Some("0") => false,
        Some("1") => true,
        Some(other) => {
            return Err(ServiceError::BadRequest(format!(
                "invalid value `{other}` for parameter `timings` (expected 0|1)"
            )))
        }
    };
    let report = mobipriv_eval::evaluate(&plan);
    let headers = vec![
        ("content-type", "application/json".to_owned()),
        ("x-mobipriv-eval-cells", report.cells.len().to_string()),
        ("x-mobipriv-eval-plan", report.plan.clone()),
    ];
    let body = if timings {
        report.to_json_timed()
    } else {
        report.to_json()
    };
    Ok(Response {
        status: 200,
        reason: "OK",
        headers,
        body: body.into_bytes(),
    })
}

fn body_format(head: &RequestHead) -> Result<WireFormat, ServiceError> {
    if let Some(fmt) = Params(&head.query).get("format") {
        return match fmt {
            "csv" => Ok(WireFormat::Csv),
            "ndjson" => Ok(WireFormat::NdJson),
            other => Err(ServiceError::BadRequest(format!(
                "invalid value `{other}` for parameter `format` (expected csv|ndjson)"
            ))),
        };
    }
    match head.header("content-type") {
        Some(ct) if ct.contains("ndjson") || ct.contains("jsonl") => Ok(WireFormat::NdJson),
        _ => Ok(WireFormat::Csv),
    }
}

fn wants_report(params: Params<'_>) -> bool {
    matches!(params.get("report"), Some("1" | "true" | "utility"))
}
