use std::error::Error;
use std::fmt;

use mobipriv_core::CoreError;
use mobipriv_model::ModelError;

/// A request-scoped failure, carrying the HTTP status it maps to.
///
/// The variants mirror the error surface a client can trigger; anything
/// that is the server's own fault collapses into [`ServiceError::Internal`].
///
/// The type is `Clone` so a single-flight leader's failure can be
/// handed verbatim to every coalesced follower — all callers of a
/// failed flight observe byte-identical error responses.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ServiceError {
    /// Malformed request: bad query parameters, unparsable body (the
    /// message carries the offending line number), invalid framing. 400.
    BadRequest(String),
    /// No route matches the request path. 404.
    NotFound(String),
    /// The path exists but not under this method; the payload is the
    /// `Allow` header value. 405.
    MethodNotAllowed(&'static str),
    /// The client trickled its request slower than the per-socket
    /// timeout (slow-loris); the connection is closed after this. 408.
    ClientTimeout(String),
    /// The body exceeds the configured limit (payload is the limit in
    /// bytes). 413.
    PayloadTooLarge(u64),
    /// The job queue is full or the server is shutting down. 503.
    Unavailable(String),
    /// The node is degraded (open circuit breaker or deep queue): cold
    /// computes are shed; the payload is the `Retry-After` value in
    /// seconds. 503.
    Overloaded(u64),
    /// Unexpected server-side failure. 500.
    Internal(String),
    /// The request's compute budget ran out before the computation
    /// finished; the payload is the budget in milliseconds. 504.
    DeadlineExceeded(u64),
}

impl ServiceError {
    /// The HTTP status code and reason phrase for this error.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            ServiceError::BadRequest(_) => (400, "Bad Request"),
            ServiceError::NotFound(_) => (404, "Not Found"),
            ServiceError::MethodNotAllowed(_) => (405, "Method Not Allowed"),
            ServiceError::ClientTimeout(_) => (408, "Request Timeout"),
            ServiceError::PayloadTooLarge(_) => (413, "Payload Too Large"),
            ServiceError::Unavailable(_) => (503, "Service Unavailable"),
            ServiceError::Overloaded(_) => (503, "Service Unavailable"),
            ServiceError::Internal(_) => (500, "Internal Server Error"),
            ServiceError::DeadlineExceeded(_) => (504, "Gateway Timeout"),
        }
    }

    /// Whether retrying the same request later can plausibly succeed
    /// without the client changing anything — the transient side of the
    /// job executor's transient-vs-permanent classification (see
    /// DESIGN.md §14). Permanent failures (malformed input, missing
    /// resources, an exhausted deadline that would simply exhaust
    /// again) are quarantined on the first attempt.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ServiceError::Unavailable(_) | ServiceError::Overloaded(_) | ServiceError::Internal(_)
        )
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::NotFound(path) => write!(f, "no route for {path}"),
            ServiceError::MethodNotAllowed(allow) => {
                write!(f, "method not allowed (allowed: {allow})")
            }
            ServiceError::ClientTimeout(m) => {
                write!(f, "request timed out waiting for the client: {m}")
            }
            ServiceError::PayloadTooLarge(limit) => {
                write!(f, "request body exceeds {limit} bytes")
            }
            ServiceError::Unavailable(m) => write!(f, "unavailable: {m}"),
            ServiceError::Overloaded(retry_after_s) => write!(
                f,
                "overloaded: cold computes are shed while degraded, retry after {retry_after_s}s"
            ),
            ServiceError::Internal(m) => write!(f, "internal error: {m}"),
            ServiceError::DeadlineExceeded(budget_ms) => {
                write!(
                    f,
                    "deadline exceeded: compute budget of {budget_ms} ms exhausted"
                )
            }
        }
    }
}

impl Error for ServiceError {}

impl From<ModelError> for ServiceError {
    /// Body-parse failures are the client's fault (400, with the line
    /// number the model reader reports); I/O failures mid-body are not.
    fn from(e: ModelError) -> Self {
        match e {
            ModelError::Io(io) => ServiceError::Internal(format!("body read failed: {io}")),
            other => ServiceError::BadRequest(other.to_string()),
        }
    }
}

impl From<CoreError> for ServiceError {
    /// Mechanism construction fails only on invalid parameters (400).
    fn from(e: CoreError) -> Self {
        ServiceError::BadRequest(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_mapping() {
        assert_eq!(ServiceError::BadRequest("x".into()).status().0, 400);
        assert_eq!(ServiceError::NotFound("/x".into()).status().0, 404);
        assert_eq!(ServiceError::MethodNotAllowed("GET").status().0, 405);
        assert_eq!(ServiceError::ClientTimeout("head".into()).status().0, 408);
        assert_eq!(ServiceError::PayloadTooLarge(1).status().0, 413);
        assert_eq!(ServiceError::Unavailable("full".into()).status().0, 503);
        assert_eq!(ServiceError::Overloaded(2).status().0, 503);
        assert_eq!(ServiceError::Internal("x".into()).status().0, 500);
        assert_eq!(ServiceError::DeadlineExceeded(50).status().0, 504);
    }

    #[test]
    fn transient_classification() {
        assert!(ServiceError::Unavailable("queue full".into()).is_transient());
        assert!(ServiceError::Overloaded(1).is_transient());
        assert!(ServiceError::Internal("panic".into()).is_transient());
        assert!(!ServiceError::BadRequest("x".into()).is_transient());
        assert!(!ServiceError::NotFound("/x".into()).is_transient());
        assert!(!ServiceError::DeadlineExceeded(10).is_transient());
        assert!(!ServiceError::PayloadTooLarge(1).is_transient());
        assert!(!ServiceError::ClientTimeout("head".into()).is_transient());
    }

    #[test]
    fn clones_render_identically() {
        let e = ServiceError::DeadlineExceeded(50);
        assert_eq!(e.to_string(), e.clone().to_string());
    }

    #[test]
    fn model_parse_errors_are_bad_requests_with_line_numbers() {
        let parse = ModelError::Parse {
            line: 7,
            offset: 118,
            message: "latitude 95 outside [-90, 90]".into(),
        };
        let e = ServiceError::from(parse);
        assert_eq!(e.status().0, 400);
        assert!(e.to_string().contains("line 7"));
        let io = ModelError::Io(std::io::Error::other("boom"));
        assert_eq!(ServiceError::from(io).status().0, 500);
    }
}
