use std::error::Error;
use std::fmt;

use mobipriv_core::CoreError;
use mobipriv_model::ModelError;

/// A request-scoped failure, carrying the HTTP status it maps to.
///
/// The variants mirror the error surface a client can trigger; anything
/// that is the server's own fault collapses into [`ServiceError::Internal`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// Malformed request: bad query parameters, unparsable body (the
    /// message carries the offending line number), invalid framing. 400.
    BadRequest(String),
    /// No route matches the request path. 404.
    NotFound(String),
    /// The path exists but not under this method; the payload is the
    /// `Allow` header value. 405.
    MethodNotAllowed(&'static str),
    /// The body exceeds the configured limit (payload is the limit in
    /// bytes). 413.
    PayloadTooLarge(u64),
    /// The job queue is full or the server is shutting down. 503.
    Unavailable(String),
    /// Unexpected server-side failure. 500.
    Internal(String),
}

impl ServiceError {
    /// The HTTP status code and reason phrase for this error.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            ServiceError::BadRequest(_) => (400, "Bad Request"),
            ServiceError::NotFound(_) => (404, "Not Found"),
            ServiceError::MethodNotAllowed(_) => (405, "Method Not Allowed"),
            ServiceError::PayloadTooLarge(_) => (413, "Payload Too Large"),
            ServiceError::Unavailable(_) => (503, "Service Unavailable"),
            ServiceError::Internal(_) => (500, "Internal Server Error"),
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::NotFound(path) => write!(f, "no route for {path}"),
            ServiceError::MethodNotAllowed(allow) => {
                write!(f, "method not allowed (allowed: {allow})")
            }
            ServiceError::PayloadTooLarge(limit) => {
                write!(f, "request body exceeds {limit} bytes")
            }
            ServiceError::Unavailable(m) => write!(f, "unavailable: {m}"),
            ServiceError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl Error for ServiceError {}

impl From<ModelError> for ServiceError {
    /// Body-parse failures are the client's fault (400, with the line
    /// number the model reader reports); I/O failures mid-body are not.
    fn from(e: ModelError) -> Self {
        match e {
            ModelError::Io(io) => ServiceError::Internal(format!("body read failed: {io}")),
            other => ServiceError::BadRequest(other.to_string()),
        }
    }
}

impl From<CoreError> for ServiceError {
    /// Mechanism construction fails only on invalid parameters (400).
    fn from(e: CoreError) -> Self {
        ServiceError::BadRequest(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_mapping() {
        assert_eq!(ServiceError::BadRequest("x".into()).status().0, 400);
        assert_eq!(ServiceError::NotFound("/x".into()).status().0, 404);
        assert_eq!(ServiceError::MethodNotAllowed("GET").status().0, 405);
        assert_eq!(ServiceError::PayloadTooLarge(1).status().0, 413);
        assert_eq!(ServiceError::Unavailable("full".into()).status().0, 503);
        assert_eq!(ServiceError::Internal("x".into()).status().0, 500);
    }

    #[test]
    fn model_parse_errors_are_bad_requests_with_line_numbers() {
        let parse = ModelError::Parse {
            line: 7,
            offset: 118,
            message: "latitude 95 outside [-90, 90]".into(),
        };
        let e = ServiceError::from(parse);
        assert_eq!(e.status().0, 400);
        assert!(e.to_string().contains("line 7"));
        let io = ModelError::Io(std::io::Error::other("boom"));
        assert_eq!(ServiceError::from(io).status().0, 500);
    }
}
