//! The server's observability surface: one per-server metrics registry
//! (plus handles for the hot-path series) and the span-timeline store
//! behind `GET /v1/traces/:id`.
//!
//! Request/cache/job/queue metrics are **per server**, owned by
//! [`AppState`](crate::AppState): the workspace's tests and benches
//! spawn several servers per process and assert exact per-server
//! counts, which a process-global registry would conflate. Engine and
//! eval profiling live in [`mobipriv_obs::global`] instead (the `Copy`
//! engine cannot carry a handle); `GET /metrics` renders both merged.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use mobipriv_obs::metrics::{Counter, Gauge, Histogram, Registry};
use mobipriv_obs::trace::SpanRecorder;

/// The request stages recorded as spans and as
/// `mobipriv_stage_seconds{stage=…}` histogram series.
pub const STAGES: [&str; 6] = [
    "parse",
    "digest",
    "cache_lookup",
    "compute",
    "serialize",
    "write",
];

/// Per-server metric handles. Everything here is an atomic behind an
/// `Arc` — updating a metric never takes the registry lock.
pub struct ServiceMetrics {
    /// The server's registry, rendered by `GET /metrics`.
    pub registry: Registry,
    /// Connections shed with `503` before parsing (queue full).
    pub shed_total: Counter,
    /// Connections currently queued between acceptor and workers.
    pub queue_depth: Gauge,
    /// High-water mark of [`ServiceMetrics::queue_depth`].
    pub queue_depth_peak: Gauge,
    /// End-to-end request wall time (accept to response written).
    pub request_seconds: Histogram,
    /// Jobs that reached `done`.
    pub jobs_done_total: Counter,
    /// Jobs that reached `failed`.
    pub jobs_failed_total: Counter,
    /// Transient job failures the executor retried (one per re-attempt).
    pub retries_total: Counter,
    /// Computations aborted because their compute budget ran out.
    pub deadline_exceeded_total: Counter,
    /// Connections cut because the client trickled its request slower
    /// than the per-socket timeout (slow-loris defence).
    pub client_timeouts_total: Counter,
    /// Cold computes rejected with `503 Retry-After` while degraded.
    pub overload_shed_total: Counter,
    /// Compute circuit-breaker state: 0 closed, 1 half-open, 2 open
    /// (refreshed at scrape time).
    pub breaker_state: Gauge,
    /// Registered-dataset count (refreshed at scrape time).
    pub datasets_count: Gauge,
    /// Registered-dataset bytes (refreshed at scrape time).
    pub datasets_bytes: Gauge,
    /// Completed result-cache entries (refreshed at scrape time).
    pub results_count: Gauge,
    /// Completed result-cache body bytes (refreshed at scrape time).
    pub results_bytes: Gauge,
    /// Job records by state (refreshed at scrape time).
    pub jobs_state: [(Gauge, &'static str); 4],
    /// Stored span timelines (refreshed at scrape time).
    pub traces_stored: Gauge,
    stage_seconds: HashMap<&'static str, Histogram>,
    requests_by_status: Mutex<HashMap<u16, Counter>>,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        ServiceMetrics::new()
    }
}

impl ServiceMetrics {
    /// Builds the registry and registers every always-present family.
    pub fn new() -> ServiceMetrics {
        let registry = Registry::new();
        let shed_total = registry.counter(
            "mobipriv_http_shed_total",
            &[],
            "Connections answered 503 before parsing because the accept queue was full",
        );
        let queue_depth = registry.gauge(
            "mobipriv_http_queue_depth",
            &[],
            "Connections currently queued between the acceptor and the worker pool",
        );
        let queue_depth_peak = registry.gauge(
            "mobipriv_http_queue_depth_peak",
            &[],
            "High-water mark of the accept queue depth",
        );
        let request_seconds = registry.histogram(
            "mobipriv_http_request_seconds",
            &[],
            "End-to-end request wall time, accept to response written",
        );
        let jobs_done_total = registry.counter(
            "mobipriv_jobs_done_total",
            &[],
            "Jobs that reached the done state",
        );
        let jobs_failed_total = registry.counter(
            "mobipriv_jobs_failed_total",
            &[],
            "Jobs that reached the failed state",
        );
        let retries_total = registry.counter(
            "mobipriv_retries_total",
            &[],
            "Transient job failures retried by the executor",
        );
        let deadline_exceeded_total = registry.counter(
            "mobipriv_deadline_exceeded_total",
            &[],
            "Computations aborted because their compute budget ran out",
        );
        let client_timeouts_total = registry.counter(
            "mobipriv_client_timeouts_total",
            &[],
            "Connections cut because the client trickled slower than the socket timeout",
        );
        let overload_shed_total = registry.counter(
            "mobipriv_overload_shed_total",
            &[],
            "Cold computes rejected with 503 Retry-After while the node was degraded",
        );
        let breaker_state = registry.gauge(
            "mobipriv_breaker_state",
            &[],
            "Compute circuit breaker state (0 closed, 1 half-open, 2 open)",
        );
        let datasets_count =
            registry.gauge("mobipriv_datasets", &[], "Datasets currently registered");
        let datasets_bytes = registry.gauge(
            "mobipriv_dataset_bytes",
            &[],
            "Canonical bytes held by the dataset registry",
        );
        let results_count = registry.gauge(
            "mobipriv_cache_entries",
            &[],
            "Completed entries in the result cache",
        );
        let results_bytes = registry.gauge(
            "mobipriv_cache_bytes",
            &[],
            "Body bytes held by the result cache",
        );
        let jobs_state = ["queued", "running", "done", "failed"].map(|state| {
            (
                registry.gauge(
                    "mobipriv_jobs",
                    &[("state", state)],
                    "Job records by lifecycle state",
                ),
                state,
            )
        });
        let traces_stored = registry.gauge(
            "mobipriv_traces_stored",
            &[],
            "Span timelines held by the trace ring buffer",
        );
        let stage_seconds = STAGES
            .iter()
            .map(|&stage| {
                (
                    stage,
                    registry.histogram(
                        "mobipriv_stage_seconds",
                        &[("stage", stage)],
                        "Wall time per request stage",
                    ),
                )
            })
            .collect();
        ServiceMetrics {
            registry,
            shed_total,
            queue_depth,
            queue_depth_peak,
            request_seconds,
            jobs_done_total,
            jobs_failed_total,
            retries_total,
            deadline_exceeded_total,
            client_timeouts_total,
            overload_shed_total,
            breaker_state,
            datasets_count,
            datasets_bytes,
            results_count,
            results_bytes,
            jobs_state,
            traces_stored,
            stage_seconds,
            requests_by_status: Mutex::new(HashMap::new()),
        }
    }

    /// Counts one finished request under its status code and records
    /// its end-to-end wall time.
    pub fn record_request(&self, status: u16, elapsed: Duration) {
        let mut by_status = self
            .requests_by_status
            .lock()
            .expect("status counters poisoned");
        by_status
            .entry(status)
            .or_insert_with(|| {
                self.registry.counter(
                    "mobipriv_http_requests_total",
                    &[("status", &status.to_string())],
                    "Requests served, by response status",
                )
            })
            .inc();
        drop(by_status);
        self.request_seconds.observe_duration(elapsed);
    }

    /// Folds a finished recorder's spans into the per-stage latency
    /// histograms.
    pub fn record_spans(&self, recorder: &SpanRecorder) {
        for span in recorder.spans() {
            let histogram = match self.stage_seconds.get(span.stage) {
                Some(h) => h.clone(),
                None => self.registry.histogram(
                    "mobipriv_stage_seconds",
                    &[("stage", span.stage)],
                    "Wall time per request stage",
                ),
            };
            histogram.observe(span.dur_us as f64 / 1e6);
        }
    }
}
