//! The serving runtime: a bounded accept queue feeding a fixed pool of
//! worker threads.
//!
//! # Request lifecycle
//!
//! 1. The acceptor thread `accept()`s a connection, applies the socket
//!    timeouts, and `try_send`s it into a bounded queue.
//! 2. If the queue is full the acceptor immediately answers `503` and
//!    drops the connection — load shedding happens before any parsing,
//!    so an overloaded server stays responsive.
//! 3. A worker thread pops the connection, parses the request head,
//!    streams the body through the incremental dataset reader, runs the
//!    mechanism through the deterministic engine, and writes the
//!    response. The connection then persists (HTTP/1.1 keep-alive):
//!    the same worker serves follow-up requests on the socket until
//!    the client closes, the idle deadline fires, the per-connection
//!    request cap is reached, or the server drains for shutdown.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] flips a flag, wakes the acceptor with a
//! loopback connection, and joins every thread: requests already
//! queued or in flight complete (idle keep-alive connections notice
//! the flag within one poll slice and close after their current
//! request); new connections are refused.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use mobipriv_core::Engine;
use mobipriv_obs::logging::{self, FieldValue};

use crate::breaker::ResilienceConfig;
use crate::chaos::ChaosConfig;
use crate::handlers::handle_connection;
use crate::http::write_response;
use crate::state::AppState;
use crate::ServiceError;

/// Tunables for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each handles one request at a time).
    pub workers: usize,
    /// Connections the acceptor may queue ahead of the workers before
    /// shedding load with `503`s.
    pub queue_depth: usize,
    /// Upper bound on a request body, after transfer decoding.
    pub max_body_bytes: u64,
    /// The engine requests run on. The default is sequential: request
    /// throughput comes from the worker pool, and responses stay
    /// bit-identical to any other engine configuration by the engine's
    /// determinism guarantee.
    pub engine: Engine,
    /// Per-socket read/write timeout (also the whole-request budget).
    pub timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server closes it
    /// (`connection: close` on the last response) — bounds how long a
    /// single client can pin a worker and re-balances long-lived
    /// clients across the pool.
    pub max_requests_per_conn: usize,
    /// Executor threads draining the async job queue.
    pub job_workers: usize,
    /// Jobs the board may queue ahead of the executors before
    /// submissions shed load with `503`s.
    pub job_queue_depth: usize,
    /// Byte budget for the dataset registry (canonical CSV bytes;
    /// least-recently-used datasets are evicted past it).
    pub dataset_budget_bytes: u64,
    /// Byte budget for the result cache (completed response bodies;
    /// least-recently-used results are evicted past it).
    pub result_budget_bytes: u64,
    /// Root directory for the persistence layer ([`crate::store`]):
    /// datasets and finished results are written through to disk and
    /// recovered on the next boot. `None` (the default) keeps the
    /// server pure in-memory.
    pub data_dir: Option<std::path::PathBuf>,
    /// Failure-domain tunables: per-request compute budget ceiling,
    /// retry/backoff schedule, breaker thresholds, degradation
    /// watermark.
    pub resilience: ResilienceConfig,
    /// Fault-injection campaign (`--chaos` / `MOBIPRIV_CHAOS`); `None`
    /// (the default) disarms the injector entirely.
    pub chaos: Option<ChaosConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            max_body_bytes: 64 * 1024 * 1024,
            engine: Engine::sequential(),
            timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(5),
            max_requests_per_conn: 1000,
            job_workers: 2,
            job_queue_depth: 64,
            dataset_budget_bytes: 512 * 1024 * 1024,
            result_budget_bytes: 256 * 1024 * 1024,
            data_dir: None,
            resilience: ResilienceConfig::default(),
            chaos: None,
        }
    }
}

/// A bound-but-not-yet-serving server (the two-phase split lets callers
/// learn the ephemeral port before traffic starts).
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
}

impl Server {
    /// Binds the listening socket.
    ///
    /// # Errors
    ///
    /// Returns the `bind(2)` error (address in use, permission, …).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server { listener, config })
    }

    /// The bound address (with the real port when `addr` asked for 0).
    ///
    /// # Errors
    ///
    /// Propagates `getsockname(2)` failure (not observed in practice).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the acceptor and worker threads, returning a handle for
    /// shutdown. With [`ServerConfig::data_dir`] set, opens the store
    /// and recovers the previous serving state first — requests are
    /// answered from the warm cache from the very first connection.
    ///
    /// # Errors
    ///
    /// Propagates `getsockname(2)` failure and store open failure.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let config = Arc::new(self.config);
        let shutdown = Arc::new(AtomicBool::new(false));
        let (state, job_receiver) = AppState::new(
            config.engine,
            config.dataset_budget_bytes,
            config.result_budget_bytes,
            config.job_queue_depth,
            config.data_dir.as_deref(),
            config.resilience,
            config.chaos,
        )?;
        let job_receiver = Arc::new(Mutex::new(job_receiver));
        let job_workers: Vec<JoinHandle<()>> = (0..config.job_workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&job_receiver);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("mobipriv-job-{i}"))
                    .spawn(move || job_loop(&receiver, &state))
                    .expect("spawn job executor thread")
            })
            .collect();
        let (sender, receiver) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));
        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let config = Arc::clone(&config);
                let state = Arc::clone(&state);
                let shutdown = Arc::clone(&shutdown);
                std::thread::Builder::new()
                    .name(format!("mobipriv-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &config, &state, &shutdown))
                    .expect("spawn worker thread")
            })
            .collect();
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let config = Arc::clone(&config);
            let state = Arc::clone(&state);
            let listener = self.listener;
            std::thread::Builder::new()
                .name("mobipriv-acceptor".to_owned())
                .spawn(move || accept_loop(&listener, sender, &shutdown, &config, &state))
                .expect("spawn acceptor thread")
        };
        logging::info(
            "service::server",
            None,
            "server listening",
            &[
                ("addr", FieldValue::Str(&addr.to_string())),
                ("workers", FieldValue::U64(config.workers.max(1) as u64)),
                (
                    "job_workers",
                    FieldValue::U64(config.job_workers.max(1) as u64),
                ),
            ],
        );
        Ok(ServerHandle {
            addr,
            shutdown,
            acceptor,
            workers,
            job_workers,
            state,
        })
    }

    /// Serves until the process exits (the foreground mode of
    /// `mobipriv-serve`).
    ///
    /// # Errors
    ///
    /// Propagates `getsockname(2)` failure from [`Server::spawn`].
    pub fn run(self) -> std::io::Result<()> {
        let handle = self.spawn()?;
        handle.join();
        Ok(())
    }
}

/// Control handle for a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    job_workers: Vec<JoinHandle<()>>,
    state: Arc<AppState>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the server is reachable on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving state (registry, cache, job board) — exposed
    /// for in-process tests and benchmarks.
    pub fn state(&self) -> &AppState {
        &self.state
    }

    /// Graceful shutdown: stops accepting, finishes queued and
    /// in-flight requests *and jobs*, joins every thread.
    pub fn shutdown(self) {
        logging::info(
            "service::server",
            None,
            "server shutting down",
            &[("addr", FieldValue::Str(&self.addr.to_string()))],
        );
        self.shutdown.store(true, Ordering::SeqCst);
        self.state.jobs.close();
        // Wake the blocking accept() with a throwaway connection. A
        // wildcard bind (0.0.0.0 / ::) is not connectable everywhere,
        // so aim the wake-up at loopback on the bound port.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match self.addr {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        if TcpStream::connect_timeout(&wake, Duration::from_secs(1)).is_ok() {
            self.join();
        }
        // If even loopback is unreachable (exotic bind), the acceptor
        // may still be blocked in accept(); joining would hang the
        // caller forever, so the threads are left detached instead —
        // they exit on the next connection or at process end.
    }

    /// Blocks until the server stops (via [`ServerHandle::shutdown`]
    /// from another thread, or never).
    fn join(self) {
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
        // The HTTP workers are gone, so no new submissions can arrive;
        // closing the board (idempotent) unblocks the executors once
        // the queued jobs drain.
        self.state.jobs.close();
        for worker in self.job_workers {
            let _ = worker.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    sender: SyncSender<TcpStream>,
    shutdown: &AtomicBool,
    config: &ServerConfig,
    state: &AppState,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Persistent accept failures (EMFILE under fd
                // exhaustion) would otherwise busy-spin this thread at
                // 100% exactly when the server is overloaded.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            break; // the wake-up connection (or racing clients) land here
        }
        let _ = stream.set_read_timeout(Some(config.timeout));
        let _ = stream.set_write_timeout(Some(config.timeout));
        // Keep-alive turns a connection into a sequence of small
        // request/response exchanges; with Nagle on, the tail of a
        // response can sit waiting for the client's delayed ACK
        // (~40 ms) because nothing else is coming to flush it. Closing
        // the socket used to hide this; a reused one cannot.
        let _ = stream.set_nodelay(true);
        match sender.try_send(stream) {
            Ok(()) => {
                let depth = state.metrics.queue_depth.add(1);
                state.metrics.queue_depth_peak.record_max(depth);
            }
            Err(TrySendError::Full(stream)) | Err(TrySendError::Disconnected(stream)) => {
                state.metrics.shed_total.inc();
                logging::warn(
                    "service::server",
                    None,
                    "connection shed: request queue full",
                    &[("queue_depth", FieldValue::U64(config.queue_depth as u64))],
                );
                shed(stream);
            }
        }
    }
    // Dropping the sender lets the workers drain the queue and exit.
}

/// Concurrent shed threads allowed before over-queue connections are
/// dropped outright (a reset is still a fast failure signal); caps the
/// thread growth an overload flood can cause.
const MAX_SHED_THREADS: usize = 32;

static SHED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Answers `503` without consuming the request (load shedding).
///
/// Runs on its own short-lived thread (at most [`MAX_SHED_THREADS`] at
/// a time): the half-close + drain that make the 503 actually reach the
/// client (closing with unread bytes in the receive buffer would RST
/// the response away) can block for up to the drain deadline, and the
/// acceptor must keep accepting while overloaded.
pub(crate) fn shed(stream: TcpStream) {
    struct Slot;
    impl Drop for Slot {
        fn drop(&mut self) {
            SHED_THREADS.fetch_sub(1, Ordering::SeqCst);
        }
    }
    if SHED_THREADS.fetch_add(1, Ordering::SeqCst) >= MAX_SHED_THREADS {
        SHED_THREADS.fetch_sub(1, Ordering::SeqCst);
        return; // drop the connection: reset beats thread exhaustion
    }
    let slot = Slot;
    let run = move || {
        let _slot = slot;
        let mut stream = stream;
        let error = ServiceError::Unavailable("request queue is full".into());
        let (status, reason) = error.status();
        let _ = write_response(
            &mut stream,
            status,
            reason,
            &[("content-type", "text/plain".to_owned())],
            format!("{error}\n").as_bytes(),
            false,
        );
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let deadline = Duration::from_secs(2);
        let _ = stream.set_read_timeout(Some(deadline));
        crate::http::drain(&mut stream, 8 * 1024 * 1024, deadline);
    };
    // On spawn failure (resource exhaustion) the connection is simply
    // dropped — again a fast failure; the slot frees via the guard.
    let _ = std::thread::Builder::new()
        .name("mobipriv-shed".to_owned())
        .spawn(run);
}

fn worker_loop(
    receiver: &Mutex<Receiver<TcpStream>>,
    config: &ServerConfig,
    state: &AppState,
    shutdown: &AtomicBool,
) {
    loop {
        let stream = {
            let guard = receiver.lock().expect("queue mutex poisoned");
            guard.recv()
        };
        match stream {
            Ok(stream) => {
                state.metrics.queue_depth.add(-1);
                // A panicking handler must not shrink the fixed pool:
                // the connection is lost, the worker survives.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(stream, config, state, shutdown);
                }));
            }
            Err(_) => break, // acceptor gone: shutdown
        }
    }
}

fn job_loop(receiver: &Mutex<Receiver<Arc<crate::jobs::Job>>>, state: &AppState) {
    loop {
        let job = {
            let guard = receiver.lock().expect("job queue mutex poisoned");
            guard.recv()
        };
        match job {
            Ok(job) => {
                // Same panic containment as the HTTP pool: a panicking
                // computation loses that job, not the executor.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    crate::jobs::run_job(&job, state);
                }));
            }
            Err(_) => break, // board closed and queue drained: shutdown
        }
    }
}
