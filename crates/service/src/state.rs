//! Shared serving state: the dataset registry, the result cache and
//! the job board, wired together once per [`Server`](crate::Server) —
//! plus, when the server has a `--data-dir`, the persistence layer
//! that makes them survive a restart.

use mobipriv_core::{CancelToken, Engine};
use mobipriv_obs::trace::TraceStore;

use crate::breaker::{Breaker, ResilienceConfig};
use crate::cache::{CachedResult, ResultCache};
use crate::chaos::{ChaosConfig, ChaosInjector};
use crate::datasets::DatasetRegistry;
use crate::jobs::JobBoard;
use crate::store::Store;
use crate::telemetry::ServiceMetrics;
use crate::ServiceError;
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Duration;

/// Span timelines kept for `GET /v1/traces/:id`.
const TRACE_CAPACITY: usize = 512;

/// Everything request handlers and job executors share.
pub struct AppState {
    /// Content-addressed dataset store (`POST /v1/datasets`).
    pub datasets: DatasetRegistry,
    /// Single-flight result cache (`GET /v1/results/:key`).
    pub results: ResultCache,
    /// Job records + submission queue (`POST /v1/jobs`).
    pub jobs: JobBoard,
    /// The engine computations run on (copied from the server config;
    /// `Engine` is `Copy`).
    pub engine: Engine,
    /// Per-server metrics (`GET /metrics`, embedded in `/v1/stats`).
    pub metrics: ServiceMetrics,
    /// Recent span timelines (`GET /v1/traces/:id`).
    pub traces: TraceStore,
    /// The persistence layer (`None` = pure in-memory server).
    pub store: Option<Arc<Store>>,
    /// The compute circuit breaker every cold compute is admitted
    /// through (see [`AppState::guarded_compute`]).
    pub breaker: Breaker,
    /// The fault injector (disarmed unless the server was started with
    /// `--chaos` / `MOBIPRIV_CHAOS`).
    pub chaos: ChaosInjector,
    /// Deadline/retry/breaker tunables (copied from the server config).
    pub resilience: ResilienceConfig,
}

impl AppState {
    /// Builds the state and hands back the job receiver the executor
    /// threads drain. With a `data_dir`, opens (or initializes) the
    /// store there, seeds the registry and cache with what recovery
    /// verified, and only then attaches the store as the write-through
    /// hook — seeding must not re-journal its own replay.
    ///
    /// # Errors
    ///
    /// Store open/initialization failure (the server refuses to start
    /// half-durable). Damaged *content* is not an error: recovery
    /// truncates torn journal tails and quarantines bad blobs.
    pub(crate) fn new(
        engine: Engine,
        dataset_budget_bytes: u64,
        result_budget_bytes: u64,
        job_queue_depth: usize,
        data_dir: Option<&std::path::Path>,
        resilience: ResilienceConfig,
        chaos: Option<ChaosConfig>,
    ) -> std::io::Result<(Arc<AppState>, Receiver<Arc<crate::jobs::Job>>)> {
        let (jobs, receiver) = JobBoard::new(job_queue_depth);
        let metrics = ServiceMetrics::new();
        let results = ResultCache::new(result_budget_bytes);
        results.register_metrics(&metrics.registry);
        let breaker = Breaker::new(
            resilience.breaker_failure_threshold,
            resilience.breaker_open,
        );
        let chaos = ChaosInjector::new(chaos);
        chaos.register_metrics(&metrics.registry);
        let datasets = DatasetRegistry::new(dataset_budget_bytes);
        let traces = TraceStore::new(TRACE_CAPACITY);
        if std::env::var("MOBIPRIV_TRACE").as_deref() == Ok("0") {
            traces.set_enabled(false);
        }
        let store = match data_dir {
            None => None,
            Some(dir) => {
                let (store, recovered) = Store::open(dir)?;
                store.register_metrics(&metrics.registry);
                let dataset_digests: Vec<String> = recovered
                    .datasets
                    .iter()
                    .map(mobipriv_model::digest::dataset_digest)
                    .collect();
                for dataset in recovered.datasets {
                    // Over-budget entries fall out here exactly as a
                    // fresh upload would be rejected or LRU-evicted.
                    let _ = datasets.register(dataset);
                }
                let result_keys: Vec<(String, String)> = recovered
                    .results
                    .iter()
                    .map(|r| {
                        (
                            r.canonical.clone(),
                            mobipriv_model::digest::digest_hex(&r.body),
                        )
                    })
                    .collect();
                for result in recovered.results {
                    results.insert_recovered(result);
                }
                // The store is not attached yet (seeding must not
                // re-journal its own replay), so whatever the budgets
                // rejected or evicted above was never journaled and its
                // blob still holds a recovery-time ref. Reconcile: evict
                // from the store everything recovery returned that the
                // registry/cache did not retain, so the next boot
                // neither resurrects it nor leaks its blob.
                for digest in &dataset_digests {
                    if !datasets.contains(digest) {
                        let _ = store.dataset_evicted(digest);
                    }
                }
                for (canonical, body_digest) in &result_keys {
                    if !results.contains(canonical) {
                        let _ = store.result_evicted_parts(canonical, body_digest);
                    }
                }
                datasets.attach_store(Arc::clone(&store));
                results.attach_store(Arc::clone(&store));
                jobs.attach_store(Arc::clone(&store));
                Some(store)
            }
        };
        Ok((
            Arc::new(AppState {
                datasets,
                results,
                jobs,
                engine,
                metrics,
                traces,
                store,
                breaker,
                chaos,
                resilience,
            }),
            receiver,
        ))
    }

    /// Runs one cold compute behind the full failure-domain gate:
    /// breaker/queue admission, chaos injection, and a fresh
    /// [`CancelToken`] carrying `budget`. Called by the single-flight
    /// leader only (inside [`ResultCache::get_or_compute`]'s closure),
    /// so admission happens exactly when a computation would actually
    /// start — cache hits and flight joins never consult the breaker.
    ///
    /// The breaker permit is resolved from the outcome: success closes
    /// or keeps the breaker closed; transient failures (panics —
    /// observed via the permit's drop guard — injected faults, tripped
    /// deadlines) count against it; permanent client-caused errors are
    /// neutral. Deadline trips also bump
    /// `mobipriv_deadline_exceeded_total` here, on the leader only, so
    /// coalesced followers do not double-count.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] when degraded (cold compute shed),
    /// the chaos injector's transient fault, or whatever `compute`
    /// itself returns.
    pub(crate) fn guarded_compute<F>(
        &self,
        canonical: &str,
        budget: Duration,
        compute: F,
    ) -> Result<CachedResult, ServiceError>
    where
        F: FnOnce(&CancelToken) -> Result<CachedResult, ServiceError>,
    {
        if self.metrics.queue_depth.get() >= self.resilience.degrade_queue_depth {
            self.metrics.overload_shed_total.inc();
            return Err(ServiceError::Overloaded(1));
        }
        let permit = match self.breaker.admit() {
            Ok(permit) => permit,
            Err(e) => {
                self.metrics.overload_shed_total.inc();
                return Err(e);
            }
        };
        // The permit's drop guard records a failure if `compute` (or the
        // injector) panics and unwinds past us — the single-flight layer
        // above catches the panic, the breaker still counts it.
        let cancel = CancelToken::with_budget(budget);
        let result = self.chaos.inject(canonical).and_then(|()| compute(&cancel));
        match &result {
            Ok(_) => permit.succeed(),
            Err(ServiceError::DeadlineExceeded(_)) => {
                self.metrics.deadline_exceeded_total.inc();
                permit.fail();
            }
            Err(e) if e.is_transient() => permit.fail(),
            Err(_) => permit.absolve(),
        }
        result
    }

    /// Whether the node is currently shedding cold computes: the
    /// breaker is not closed, or the accept queue is past the
    /// degradation threshold. `/healthz` reports this as `degraded`.
    pub fn degraded(&self) -> bool {
        self.breaker.is_open()
            || self.metrics.queue_depth.get() >= self.resilience.degrade_queue_depth
    }

    /// Refreshes the point-in-time gauges (dataset/result/job/trace
    /// populations, store sizes, breaker state) from their owning
    /// components — called before every registry render so `/metrics`
    /// and `/v1/stats` read one source of truth.
    pub fn refresh_gauges(&self) {
        self.metrics.breaker_state.set(self.breaker.state_code());
        let (dataset_count, dataset_bytes) = self.datasets.stats();
        self.metrics.datasets_count.set(dataset_count as i64);
        self.metrics.datasets_bytes.set(dataset_bytes as i64);
        let (result_count, result_bytes) = self.results.stats();
        self.metrics.results_count.set(result_count as i64);
        self.metrics.results_bytes.set(result_bytes as i64);
        let counts = self.jobs.counts();
        let by_state = [counts.0, counts.1, counts.2, counts.3];
        for ((gauge, _), value) in self.metrics.jobs_state.iter().zip(by_state) {
            gauge.set(value as i64);
        }
        self.metrics.traces_stored.set(self.traces.len() as i64);
        if let Some(store) = &self.store {
            store.refresh_gauges();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedResult;
    use mobipriv_geo::LatLng;
    use mobipriv_model::digest::dataset_digest;
    use mobipriv_model::{Dataset, Fix, Timestamp, Trace, UserId};

    /// What recovery returns but the boot-time budgets reject must be
    /// evicted from the store too — otherwise the rejected entries
    /// resurrect on the next boot and their blobs leak forever.
    #[test]
    fn seeding_rejections_are_reconciled_with_the_store() {
        let dir = std::env::temp_dir().join(format!("mobipriv-reconcile-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dataset = Dataset::from_traces(vec![Trace::new(
            UserId::new(1),
            vec![Fix::new(
                LatLng::new(45.76, 4.84).unwrap(),
                Timestamp::new(0),
            )],
        )
        .unwrap()]);
        let digest = dataset_digest(&dataset);
        let result = |canonical: &str, body: &[u8]| CachedResult {
            canonical: canonical.to_owned(),
            content_type: "text/csv",
            headers: vec![("x-mobipriv-seed", "1".to_owned())],
            body: body.to_vec(),
        };
        {
            let (store, _) = Store::open(&dir).unwrap();
            store.put_dataset(&digest, &dataset).unwrap();
            store.put_result(&result("canon|small", b"fits")).unwrap();
            store.put_result(&result("canon|big", &[b'x'; 64])).unwrap();
        }
        // Budgets that reject the dataset (8 bytes) and the big result
        // (32 bytes) at seeding time.
        {
            let (state, _receiver) = AppState::new(
                Engine::sequential(),
                8,
                32,
                4,
                Some(dir.as_path()),
                ResilienceConfig::default(),
                None,
            )
            .unwrap();
            assert_eq!(state.datasets.stats().0, 0, "dataset over budget");
            assert_eq!(state.results.stats().0, 1, "only the small result fits");
        }
        // The next boot sees exactly what the budgets retained; the
        // rejected entries' blobs are gone, not leaked.
        let (store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(
            recovered.datasets.len(),
            0,
            "rejected dataset not resurrected"
        );
        assert_eq!(recovered.results.len(), 1);
        assert_eq!(recovered.results[0].canonical, "canon|small");
        assert_eq!(store.stats().blobs, 1, "rejected blobs deleted");
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
