//! Shared serving state: the dataset registry, the result cache and
//! the job board, wired together once per [`Server`](crate::Server).

use mobipriv_core::Engine;

use crate::cache::ResultCache;
use crate::datasets::DatasetRegistry;
use crate::jobs::JobBoard;
use std::sync::mpsc::Receiver;
use std::sync::Arc;

/// Everything request handlers and job executors share.
pub struct AppState {
    /// Content-addressed dataset store (`POST /v1/datasets`).
    pub datasets: DatasetRegistry,
    /// Single-flight result cache (`GET /v1/results/:key`).
    pub results: ResultCache,
    /// Job records + submission queue (`POST /v1/jobs`).
    pub jobs: JobBoard,
    /// The engine computations run on (copied from the server config;
    /// `Engine` is `Copy`).
    pub engine: Engine,
}

impl AppState {
    /// Builds the state and hands back the job receiver the executor
    /// threads drain.
    pub(crate) fn new(
        engine: Engine,
        dataset_budget_bytes: u64,
        result_budget_bytes: u64,
        job_queue_depth: usize,
    ) -> (Arc<AppState>, Receiver<Arc<crate::jobs::Job>>) {
        let (jobs, receiver) = JobBoard::new(job_queue_depth);
        (
            Arc::new(AppState {
                datasets: DatasetRegistry::new(dataset_budget_bytes),
                results: ResultCache::new(result_budget_bytes),
                jobs,
                engine,
            }),
            receiver,
        )
    }
}
