//! The computations the result cache addresses: anonymization and
//! utility evaluation as pure functions of `(dataset, canonical
//! mechanism params, seed)`.
//!
//! Both the synchronous `POST /v1/anonymize` handler and the async job
//! executor funnel through these functions *via the cache*, so the two
//! surfaces coalesce with each other: a sync request and a job for the
//! same key share one computation and one cached body.

use std::time::Instant;

use mobipriv_core::{CancelToken, Engine, Mechanism};
use mobipriv_eval::Json;
use mobipriv_metrics::{coverage, spatial};
use mobipriv_model::{write_bin, write_csv, Dataset, WireFormat};
use mobipriv_obs::trace::SpanRecorder;

use crate::cache::CachedResult;
use crate::ServiceError;

/// Grid-cell size used by the utility report, meters.
pub(crate) const REPORT_CELL_M: f64 = 250.0;

/// The deterministic error a tripped compute budget maps to. Built
/// from the token's budget so every flight follower (which receives a
/// clone) renders the identical message.
fn deadline_exceeded(cancel: &CancelToken) -> ServiceError {
    let budget_ms = cancel
        .budget()
        .map(|b| b.as_millis() as u64)
        .unwrap_or_default();
    ServiceError::DeadlineExceeded(budget_ms)
}

/// Versioned canonical cache-key string. Every field that changes the
/// response bytes is in here; nothing transport-level (framing, header
/// order) is. The *input* wire format is deliberately absent — CSV,
/// NDJSON and Bin uploads of the same data share one digest and one
/// entry — but the *output* format changes the response bytes, so Bin
/// responses get a `|wire=bin` suffix (CSV, the historical default,
/// stays unsuffixed to keep existing keys stable). The `v1|` prefix
/// lets a future revision invalidate the whole keyspace at once.
pub(crate) fn canonical_key(
    kind: &str,
    dataset_digest: &str,
    mechanism_canonical: &str,
    seed: u64,
    report: bool,
    wire: WireFormat,
) -> String {
    let suffix = match wire {
        WireFormat::Bin => "|wire=bin",
        _ => "",
    };
    format!(
        "v1|{kind}|{dataset_digest}|{mechanism_canonical}|seed={seed}|report={}{suffix}",
        u8::from(report)
    )
}

/// Runs a mechanism over the dataset and materializes the cacheable
/// response: the anonymized dataset in the requested wire format
/// (canonical CSV, or the length-prefixed Bin frames for
/// `wire = Bin`) plus the computation-describing headers. `progress`
/// receives coarse stage fractions in `[0, 1]` (protect ≈ the work;
/// serialization and metrics the remainder). `spans` collects the
/// `compute`/`serialize` stage timings for the request's (or job's)
/// trace — observability only, never part of the cached bytes.
/// `cancel` is the request's compute budget: a trip between per-trace
/// kernels aborts with [`ServiceError::DeadlineExceeded`] and nothing
/// is cached (completed outputs stay bit-identical — see
/// [`mobipriv_core::Engine::try_protect`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn anonymize_result(
    canonical: &str,
    dataset: &Dataset,
    mechanism: &dyn Mechanism,
    mechanism_canonical: &str,
    seed: u64,
    report: bool,
    wire: WireFormat,
    engine: &Engine,
    cancel: &CancelToken,
    progress: &dyn Fn(f64),
    spans: &SpanRecorder,
) -> Result<CachedResult, ServiceError> {
    progress(0.05);
    let compute_start = Instant::now();
    let output = engine
        .try_protect(mechanism, dataset, seed, cancel)
        .map_err(|_| deadline_exceeded(cancel))?;
    spans.record("compute", compute_start);
    progress(0.8);
    let serialize_start = Instant::now();
    let mut body = Vec::new();
    let (serialized, content_type) = match wire {
        WireFormat::Bin => (write_bin(&output, &mut body), "application/octet-stream"),
        _ => (write_csv(&output, &mut body), "text/csv"),
    };
    serialized.map_err(|e| ServiceError::Internal(format!("serializing response: {e}")))?;
    spans.record("serialize", serialize_start);
    progress(0.9);
    let mut headers = vec![
        ("x-mobipriv-mechanism", mechanism_canonical.to_owned()),
        ("x-mobipriv-seed", seed.to_string()),
        ("x-mobipriv-input-traces", dataset.len().to_string()),
        ("x-mobipriv-input-fixes", dataset.total_fixes().to_string()),
        ("x-mobipriv-output-traces", output.len().to_string()),
        ("x-mobipriv-output-fixes", output.total_fixes().to_string()),
    ];
    if report {
        // Label-agnostic distortion: mechanisms may relabel users, which
        // would break per-user matching.
        let distortion = spatial::dataset_distortion_anonymous(dataset, &output);
        let cover = coverage::coverage(dataset, &output, REPORT_CELL_M);
        headers.push((
            "x-mobipriv-distortion-mean-m",
            format!("{:.3}", distortion.mean),
        ));
        headers.push((
            "x-mobipriv-distortion-median-m",
            format!("{:.3}", distortion.median),
        ));
        headers.push((
            "x-mobipriv-distortion-p95-m",
            format!("{:.3}", distortion.p95),
        ));
        headers.push((
            "x-mobipriv-distortion-max-m",
            format!("{:.3}", distortion.max),
        ));
        headers.push(("x-mobipriv-coverage-f1", format!("{:.4}", cover.f1)));
    }
    progress(1.0);
    Ok(CachedResult {
        canonical: canonical.to_owned(),
        content_type,
        headers,
        body,
    })
}

/// Runs a mechanism and materializes the utility report — the
/// evaluation job's output — as canonical JSON (the eval crate's
/// deterministic writer, so equal keys produce byte-equal documents).
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_result(
    canonical: &str,
    dataset_digest: &str,
    dataset: &Dataset,
    mechanism: &dyn Mechanism,
    mechanism_canonical: &str,
    seed: u64,
    engine: &Engine,
    cancel: &CancelToken,
    progress: &dyn Fn(f64),
    spans: &SpanRecorder,
) -> Result<CachedResult, ServiceError> {
    progress(0.05);
    let compute_start = Instant::now();
    let output = engine
        .try_protect(mechanism, dataset, seed, cancel)
        .map_err(|_| deadline_exceeded(cancel))?;
    spans.record("compute", compute_start);
    progress(0.6);
    let serialize_start = Instant::now();
    let distortion = spatial::dataset_distortion_anonymous(dataset, &output);
    let cover = coverage::coverage(dataset, &output, REPORT_CELL_M);
    progress(0.9);
    let doc = Json::Obj(vec![
        ("schema_version".into(), Json::UInt(1)),
        ("kind".into(), Json::Str("utility_report".into())),
        ("dataset".into(), Json::Str(dataset_digest.to_owned())),
        (
            "mechanism".into(),
            Json::Str(mechanism_canonical.to_owned()),
        ),
        ("seed".into(), Json::UInt(seed)),
        (
            "input".into(),
            Json::Obj(vec![
                ("traces".into(), Json::UInt(dataset.len() as u64)),
                ("fixes".into(), Json::UInt(dataset.total_fixes() as u64)),
            ]),
        ),
        (
            "output".into(),
            Json::Obj(vec![
                ("traces".into(), Json::UInt(output.len() as u64)),
                ("fixes".into(), Json::UInt(output.total_fixes() as u64)),
            ]),
        ),
        (
            "distortion".into(),
            Json::Obj(vec![
                ("mean_m".into(), Json::Num(distortion.mean)),
                ("median_m".into(), Json::Num(distortion.median)),
                ("p95_m".into(), Json::Num(distortion.p95)),
                ("max_m".into(), Json::Num(distortion.max)),
            ]),
        ),
        (
            "coverage".into(),
            Json::Obj(vec![
                ("precision".into(), Json::Num(cover.precision)),
                ("recall".into(), Json::Num(cover.recall)),
                ("f1".into(), Json::Num(cover.f1)),
                ("total_variation".into(), Json::Num(cover.total_variation)),
            ]),
        ),
    ]);
    let mut body = String::new();
    doc.write(&mut body);
    body.push('\n');
    spans.record("serialize", serialize_start);
    progress(1.0);
    Ok(CachedResult {
        canonical: canonical.to_owned(),
        content_type: "application/json",
        headers: vec![
            ("x-mobipriv-mechanism", mechanism_canonical.to_owned()),
            ("x-mobipriv-seed", seed.to_string()),
        ],
        body: body.into_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_keys_separate_every_axis() {
        let m = "promesse alpha=100";
        let base = canonical_key("anonymize", "d1", m, 42, false, WireFormat::Csv);
        for other in [
            canonical_key("evaluate", "d1", m, 42, false, WireFormat::Csv),
            canonical_key("anonymize", "d2", m, 42, false, WireFormat::Csv),
            canonical_key(
                "anonymize",
                "d1",
                "promesse alpha=200",
                42,
                false,
                WireFormat::Csv,
            ),
            canonical_key("anonymize", "d1", m, 43, false, WireFormat::Csv),
            canonical_key("anonymize", "d1", m, 42, true, WireFormat::Csv),
            canonical_key("anonymize", "d1", m, 42, false, WireFormat::Bin),
        ] {
            assert_ne!(base, other);
        }
        assert_eq!(
            base,
            canonical_key("anonymize", "d1", m, 42, false, WireFormat::Csv)
        );
        // Pre-Bin keys must be stable: the default wire leaves no trace.
        assert!(!base.contains("wire="));
        // NDJSON uploads answered in CSV share the CSV keyspace.
        assert_eq!(
            base,
            canonical_key("anonymize", "d1", m, 42, false, WireFormat::NdJson)
        );
    }
}
