//! `mobipriv-serve` — the anonymization service front-end. Run with
//! `--help` for usage.

use std::time::Duration;

use mobipriv_core::Engine;
use mobipriv_service::{ChaosConfig, Router, RouterConfig, Server, ServerConfig};

const USAGE: &str = "\
usage: mobipriv-serve [options]

Serves the mobipriv mechanism matrix over HTTP/1.1:

  POST /v1/anonymize?mechanism=<name>[&seed=N][&dataset=DIGEST][&report=1]
  POST /v1/datasets                  register a dataset once, get its digest
  POST /v1/jobs?dataset=DIGEST&mechanism=<name>[&kind=anonymize|evaluate][&seed=N]
  GET  /v1/jobs/<id>                 poll queued/running/done/failed + progress
  GET  /v1/results/<key>             fetch the finished bytes
  GET  /v1/datasets [/<digest>]      registry listing / one dataset's metadata
  GET  /v1/stats                     cache + registry + job counters
  GET  /v1/mechanisms
  GET  /healthz

Bodies are CSV (`user,trace,lat,lng,time`) or NDJSON rows, fixed-length
or chunked. Responses are deterministic in (input content, canonical
parameters, seed) — which is also the result-cache key: identical
requests coalesce into one computation and repeats are cache hits
(`x-mobipriv-cache: hit|miss`).

options:
  --addr HOST:PORT     bind address (default 127.0.0.1:8645; port 0
                       picks an ephemeral port, printed on startup)
  --workers N          worker threads (default 4)
  --queue N            accept-queue depth before 503 load shedding
                       (default 64)
  --max-body-mb N      request-body limit in MiB (default 64)
  --max-requests-per-conn N  requests served on one keep-alive
                       connection before the server closes it
                       (default 1000)
  --idle-timeout-ms N  how long a keep-alive connection may sit idle
                       between requests before the server closes it
                       (default 5000)
  --route SHARDS       run as a shard router instead of a single node:
                       SHARDS is a comma-separated list of shard
                       addresses (host:port). Requests are routed to
                       the shard owning the dataset digest (rendezvous
                       hashing); /metrics and /v1/stats fan out and
                       fold across shards. Only --addr, --workers,
                       --queue, --max-body-mb, --max-requests-per-conn
                       and --idle-timeout-ms apply in this mode.
  --job-workers N      async job executor threads (default 2)
  --job-queue N        job-queue depth before submissions 503 (default 64)
  --dataset-budget-mb N  registry byte budget, LRU-evicted (default 512)
  --result-budget-mb N   result-cache byte budget, LRU-evicted (default 256)
  --data-dir PATH      persist datasets and finished results under PATH
                       (content-addressed blobs + append-only journal);
                       on restart the journal is replayed, every blob is
                       re-hashed (mismatches quarantined) and previous
                       results serve as byte-identical cache hits.
                       Omit for the default pure in-memory behavior.
  --engine-threads N   run each request's per-trace fan-out on N engine
                       threads instead of sequentially (output is
                       identical; per-request parallelism only pays off
                       when requests are few and huge)
  --compute-timeout-ms N  default and ceiling for the per-request compute
                       budget (default 30000); requests may lower it with
                       a `timeout_ms` query parameter, never raise it
  --max-attempts N     attempts a job gets before quarantine as `failed`
                       (default 3; 1 disables retries)
  --breaker-threshold N  consecutive compute failures that open the
                       circuit breaker (default 5); while open, cold
                       computes answer 503 + Retry-After and /healthz
                       reports `degraded` (cache hits keep serving)
  --breaker-open-ms N  how long the breaker stays open before admitting
                       a half-open probe (default 1000)
  --chaos SPEC         arm the fault injector (testing only; also via
                       the MOBIPRIV_CHAOS env var). SPEC is key=value
                       pairs: panic=P, error=P, latency=P (probabilities),
                       all=P shorthand, latency-ms=N, seed=N. Example:
                       --chaos all=0.05,latency-ms=20,seed=1
  -h, --help           print this help
";

fn fail(message: &str) -> ! {
    eprintln!("{message}\n\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig {
        addr: "127.0.0.1:8645".to_owned(),
        ..ServerConfig::default()
    };
    let mut shards: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: usize| -> &str {
            match args.get(i + 1) {
                Some(v) => v.as_str(),
                None => fail(&format!("{arg} expects a value")),
            }
        };
        match arg {
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            "--addr" => config.addr = value(i).to_owned(),
            "--workers" => match value(i).parse() {
                Ok(n) if n > 0 => config.workers = n,
                _ => fail("--workers expects a positive integer"),
            },
            "--queue" => match value(i).parse() {
                Ok(n) => config.queue_depth = n,
                _ => fail("--queue expects a non-negative integer"),
            },
            "--max-body-mb" => match value(i).parse::<u64>() {
                Ok(n) if n > 0 => config.max_body_bytes = n * 1024 * 1024,
                _ => fail("--max-body-mb expects a positive integer"),
            },
            "--max-requests-per-conn" => match value(i).parse() {
                Ok(n) if n > 0 => config.max_requests_per_conn = n,
                _ => fail("--max-requests-per-conn expects a positive integer"),
            },
            "--idle-timeout-ms" => match value(i).parse::<u64>() {
                Ok(n) if n > 0 => config.idle_timeout = Duration::from_millis(n),
                _ => fail("--idle-timeout-ms expects a positive integer"),
            },
            "--route" => {
                shards = value(i)
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
                if shards.is_empty() {
                    fail("--route expects a comma-separated list of shard addresses");
                }
            }
            "--job-workers" => match value(i).parse() {
                Ok(n) if n > 0 => config.job_workers = n,
                _ => fail("--job-workers expects a positive integer"),
            },
            "--job-queue" => match value(i).parse() {
                Ok(n) => config.job_queue_depth = n,
                _ => fail("--job-queue expects a non-negative integer"),
            },
            "--dataset-budget-mb" => match value(i).parse::<u64>() {
                Ok(n) if n > 0 => config.dataset_budget_bytes = n * 1024 * 1024,
                _ => fail("--dataset-budget-mb expects a positive integer"),
            },
            "--result-budget-mb" => match value(i).parse::<u64>() {
                Ok(n) if n > 0 => config.result_budget_bytes = n * 1024 * 1024,
                _ => fail("--result-budget-mb expects a positive integer"),
            },
            "--data-dir" => config.data_dir = Some(std::path::PathBuf::from(value(i))),
            "--engine-threads" => match value(i).parse() {
                Ok(n) if n > 0 => config.engine = Engine::parallel().with_workers(n),
                _ => fail("--engine-threads expects a positive integer"),
            },
            "--compute-timeout-ms" => match value(i).parse::<u64>() {
                Ok(n) if n > 0 => config.resilience.compute_timeout = Duration::from_millis(n),
                _ => fail("--compute-timeout-ms expects a positive integer"),
            },
            "--max-attempts" => match value(i).parse() {
                Ok(n) if n > 0 => config.resilience.max_attempts = n,
                _ => fail("--max-attempts expects a positive integer"),
            },
            "--breaker-threshold" => match value(i).parse() {
                Ok(n) if n > 0 => config.resilience.breaker_failure_threshold = n,
                _ => fail("--breaker-threshold expects a positive integer"),
            },
            "--breaker-open-ms" => match value(i).parse::<u64>() {
                Ok(n) if n > 0 => config.resilience.breaker_open = Duration::from_millis(n),
                _ => fail("--breaker-open-ms expects a positive integer"),
            },
            "--chaos" => match ChaosConfig::parse(value(i)) {
                Ok(chaos) => config.chaos = Some(chaos),
                Err(e) => fail(&format!("--chaos: {e}")),
            },
            other => fail(&format!("unexpected argument: {other}")),
        }
        i += 2; // every remaining flag takes a value (--help returned)
    }
    if config.chaos.is_none() {
        if let Ok(spec) = std::env::var("MOBIPRIV_CHAOS") {
            if !spec.is_empty() {
                match ChaosConfig::parse(&spec) {
                    Ok(chaos) => config.chaos = Some(chaos),
                    Err(e) => fail(&format!("MOBIPRIV_CHAOS: {e}")),
                }
            }
        }
    }
    if let Some(chaos) = &config.chaos {
        eprintln!(
            "mobipriv-serve: CHAOS ARMED (panic={}, error={}, latency={}): \
             faults will be injected into computes — testing only",
            chaos.panic_p, chaos.error_p, chaos.latency_p
        );
    }
    let workers = config.workers;
    let queue = config.queue_depth;
    if !shards.is_empty() {
        let router_config = RouterConfig {
            addr: config.addr.clone(),
            shards,
            workers: config.workers,
            queue_depth: config.queue_depth,
            max_body_bytes: config.max_body_bytes,
            timeout: config.timeout,
            idle_timeout: config.idle_timeout,
            max_requests_per_conn: config.max_requests_per_conn,
            ..RouterConfig::default()
        };
        let shard_count = router_config.shards.len();
        let router = match Router::bind(router_config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mobipriv-serve: bind failed: {e}");
                std::process::exit(1);
            }
        };
        let addr = router.local_addr().expect("bound socket has an address");
        println!(
            "mobipriv-serve listening on http://{addr} (workers={workers}, queue={queue}, \
             routing {shard_count} shards)"
        );
        if let Err(e) = router.run() {
            eprintln!("mobipriv-serve: {e}");
            std::process::exit(1);
        }
        return;
    }
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mobipriv-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr().expect("bound socket has an address");
    println!("mobipriv-serve listening on http://{addr} (workers={workers}, queue={queue})");
    if let Err(e) = server.run() {
        eprintln!("mobipriv-serve: {e}");
        std::process::exit(1);
    }
}
