//! `mobipriv-loadgen` — closed-loop load generator for
//! `mobipriv-serve`: replays a synthetic city at a configurable request
//! rate and reports throughput and latency percentiles. Run with
//! `--help` for usage.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mobipriv_model::write_csv;
use mobipriv_synth::scenarios;

const USAGE: &str = "\
usage: mobipriv-loadgen [options]

Generates a deterministic synthetic-city workload, POSTs it repeatedly
to a running mobipriv-serve, and prints a throughput/latency summary.

options:
  --addr HOST:PORT    server address (default 127.0.0.1:8645)
  --users N           synthetic-city size (default 1000)
  --requests N        total requests to issue (default 32)
  --concurrency N     parallel client connections (default 8)
  --rate R            target request rate in req/s across all clients
                      (default 0 = as fast as the server answers)
  --mechanism NAME    mechanism to exercise (default promesse)
  --query EXTRA       extra query parameters, e.g. 'alpha=200&report=1'
  --seed N            workload + request seed (default 42)
  --dump-workload     print the workload CSV to stdout and exit (used
                      by the CI smoke script)
  -h, --help          print this help
";

struct Options {
    addr: String,
    users: usize,
    requests: usize,
    concurrency: usize,
    rate: f64,
    mechanism: String,
    query: String,
    seed: u64,
    dump: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:8645".to_owned(),
            users: 1_000,
            requests: 32,
            concurrency: 8,
            rate: 0.0,
            mechanism: "promesse".to_owned(),
            query: String::new(),
            seed: 42,
            dump: false,
        }
    }
}

fn fail(message: &str) -> ! {
    eprintln!("{message}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> Options {
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: usize| -> &str {
            match args.get(i + 1) {
                Some(v) => v.as_str(),
                None => fail(&format!("{arg} expects a value")),
            }
        };
        let mut consumed = 2;
        match arg {
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--addr" => opts.addr = value(i).to_owned(),
            "--users" => match value(i).parse() {
                Ok(n) if n > 0 => opts.users = n,
                _ => fail("--users expects a positive integer"),
            },
            "--requests" => match value(i).parse() {
                Ok(n) if n > 0 => opts.requests = n,
                _ => fail("--requests expects a positive integer"),
            },
            "--concurrency" => match value(i).parse() {
                Ok(n) if n > 0 => opts.concurrency = n,
                _ => fail("--concurrency expects a positive integer"),
            },
            "--rate" => match value(i).parse() {
                Ok(r) if r >= 0.0 => opts.rate = r,
                _ => fail("--rate expects a non-negative number"),
            },
            "--mechanism" => opts.mechanism = value(i).to_owned(),
            "--query" => opts.query = value(i).to_owned(),
            "--seed" => match value(i).parse() {
                Ok(n) => opts.seed = n,
                _ => fail("--seed expects an integer"),
            },
            "--dump-workload" => {
                opts.dump = true;
                consumed = 1;
            }
            other => fail(&format!("unexpected argument: {other}")),
        }
        i += consumed;
    }
    opts
}

/// One POST over a fresh connection; returns (status, response bytes).
fn post(addr: &str, target: &str, body: &[u8]) -> std::io::Result<(u16, usize)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: text/csv\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let status = response
        .split(|&b| b == b' ')
        .nth(1)
        .and_then(|s| std::str::from_utf8(s).ok())
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or(0);
    Ok((status, response.len()))
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[idx - 1]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args);

    let workload = scenarios::serving_day(opts.users, opts.seed);
    let mut body = Vec::new();
    write_csv(&workload.dataset, &mut body).expect("serialize workload");
    if opts.dump {
        std::io::stdout().write_all(&body).expect("write workload");
        return;
    }
    let traces = workload.dataset.len();
    let fixes = workload.dataset.total_fixes();
    drop(workload);

    let mut target = format!(
        "/v1/anonymize?mechanism={}&seed={}",
        opts.mechanism, opts.seed
    );
    if !opts.query.is_empty() {
        target.push('&');
        target.push_str(&opts.query);
    }

    println!(
        "workload: {} users, {traces} traces, {fixes} fixes, {}-byte body (seed {})",
        opts.users,
        body.len(),
        opts.seed
    );
    println!(
        "target:   http://{}{} — {} requests, concurrency {}{}",
        opts.addr,
        target,
        opts.requests,
        opts.concurrency,
        if opts.rate > 0.0 {
            format!(", {} req/s", opts.rate)
        } else {
            String::new()
        }
    );

    // Connectivity probe before unleashing the fleet.
    match post(&opts.addr, &target, &body) {
        Ok((200, _)) => {}
        Ok((status, _)) => fail(&format!("probe request answered HTTP {status}")),
        Err(e) => fail(&format!("cannot reach {}: {e}", opts.addr)),
    }

    let body = Arc::new(body);
    let target = Arc::new(target);
    let addr = Arc::new(opts.addr.clone());
    let next = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let mut clients = Vec::new();
    for _ in 0..opts.concurrency {
        let (body, target, addr, next) = (
            Arc::clone(&body),
            Arc::clone(&target),
            Arc::clone(&addr),
            Arc::clone(&next),
        );
        let (requests, rate) = (opts.requests, opts.rate);
        clients.push(std::thread::spawn(move || {
            let mut latencies = Vec::new();
            let mut failures = 0usize;
            let mut bytes_in = 0usize;
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= requests {
                    break;
                }
                if rate > 0.0 {
                    // Open-loop pacing: request i is due at i/rate.
                    let due = Duration::from_secs_f64(i as f64 / rate);
                    if let Some(wait) = due.checked_sub(started.elapsed()) {
                        std::thread::sleep(wait);
                    }
                }
                let sent = Instant::now();
                match post(&addr, &target, &body) {
                    Ok((200, n)) => {
                        latencies.push(sent.elapsed());
                        bytes_in += n;
                    }
                    Ok(_) | Err(_) => failures += 1,
                }
            }
            (latencies, failures, bytes_in)
        }));
    }
    let mut latencies: Vec<Duration> = Vec::with_capacity(opts.requests);
    let mut failures = 0usize;
    let mut bytes_in = 0usize;
    for client in clients {
        let (l, f, b) = client.join().expect("client thread panicked");
        latencies.extend(l);
        failures += f;
        bytes_in += b;
    }
    let elapsed = started.elapsed();
    latencies.sort_unstable();

    let ok = latencies.len();
    println!(
        "result:   {ok} ok, {failures} failed in {:.2} s ({} B received)",
        elapsed.as_secs_f64(),
        bytes_in
    );
    if ok > 0 {
        let throughput = ok as f64 / elapsed.as_secs_f64();
        println!(
            "throughput: {throughput:.1} req/s, {:.2} Mfix/s anonymized",
            throughput * fixes as f64 / 1e6
        );
        let mean = latencies.iter().sum::<Duration>() / ok as u32;
        println!(
            "latency ms: mean {:.1}  p50 {:.1}  p90 {:.1}  p99 {:.1}  max {:.1}",
            ms(mean),
            ms(percentile(&latencies, 0.50)),
            ms(percentile(&latencies, 0.90)),
            ms(percentile(&latencies, 0.99)),
            ms(*latencies.last().expect("non-empty")),
        );
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
