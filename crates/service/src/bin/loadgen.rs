//! `mobipriv-loadgen` — closed-loop load generator for
//! `mobipriv-serve`: replays a synthetic city at a configurable request
//! rate and reports throughput, latency percentiles and a per-status
//! failure breakdown. The `--jobs` mode replays the paper's
//! publish-once/query-many shape through the dataset registry and the
//! async job engine, reporting cold-vs-warm latency and the cache hit
//! rate. Run with `--help` for usage.

use std::collections::{BTreeMap, HashMap};
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mobipriv_model::{
    read_bin, read_csv, read_ndjson, write_bin, write_csv, write_ndjson, Dataset, WireFormat,
};
use mobipriv_obs::scrape::{parse as parse_scrape, Scrape};
use mobipriv_service::client::{json_str_field, request, request_with_timeout, Connection};
use mobipriv_service::telemetry::STAGES;
use mobipriv_synth::scenarios;

const USAGE: &str = "\
usage: mobipriv-loadgen [options]

Generates a deterministic synthetic-city workload, POSTs it repeatedly
to a running mobipriv-serve, and prints a throughput/latency summary
with a per-status failure breakdown (exit status 1 if any request
failed).

With --jobs the workload is registered once (POST /v1/datasets) and the
requests become submit→poll→fetch cycles against the async job engine,
cycling through --distinct different (mechanism, seed) keys: the first
request for each key is a cold computation, repeats are cache hits. The
summary splits cold vs warm latency and reports the server's cache hit
rate.

options:
  --addr HOST:PORT    server address (default 127.0.0.1:8645)
  --users N           synthetic-city size (default 1000)
  --requests N        total requests to issue (default 32)
  --concurrency N     parallel client connections (default 8)
  --rate R            target request rate in req/s across all clients
                      (default 0 = as fast as the server answers)
  --open-loop R       like --rate, but latency is measured from each
                      request's *scheduled* arrival time (i/R), so
                      server backlog shows up as latency instead of
                      being hidden by slow clients (no coordinated
                      omission)
  --keep-alive        one persistent HTTP/1.1 connection per client
                      thread instead of a fresh TCP connection per
                      request; the summary reports the achieved
                      connection reuse rate
  --mechanism NAME    mechanism to exercise (default promesse)
  --query EXTRA       extra query parameters, e.g. 'alpha=200&report=1'
  --seed N            workload + request seed (default 42)
  --format FMT        wire format for bodies: csv|ndjson|bin (default
                      csv). One-shot requests upload and download in
                      this format; --jobs mode registers the dataset
                      with it. Also prints the client-side parse and
                      serialize throughput of the chosen format.
  --jobs              register-once/publish-many mode (see above)
  --distinct N        distinct job keys the --jobs mode cycles through
                      (default 4)
  --dump-workload     print the workload in the chosen --format to
                      stdout and exit (used by the CI smoke script)
  --timeout SECS      per-read client timeout (default 60); a request
                      idle past it counts as a failure instead of
                      hanging the run
  --chaos             resilience soak against a chaos-armed server
                      (`mobipriv-serve --chaos …`): issues --requests
                      mixed one-shot/job/deadline-probe requests and
                      asserts the failure-domain invariants — no hangs,
                      no stuck keys, every response either byte-identical
                      to the fault-free answer or a well-formed error,
                      and the circuit breaker re-closes after the storm.
                      Exit 1 on any violation.
  -h, --help          print this help
";

struct Options {
    addr: String,
    users: usize,
    requests: usize,
    concurrency: usize,
    rate: f64,
    open_loop: bool,
    keep_alive: bool,
    mechanism: String,
    query: String,
    seed: u64,
    format: WireFormat,
    jobs: bool,
    distinct: usize,
    dump: bool,
    timeout: Duration,
    chaos: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:8645".to_owned(),
            users: 1_000,
            requests: 32,
            concurrency: 8,
            rate: 0.0,
            open_loop: false,
            keep_alive: false,
            mechanism: "promesse".to_owned(),
            query: String::new(),
            seed: 42,
            format: WireFormat::Csv,
            jobs: false,
            distinct: 4,
            dump: false,
            timeout: Duration::from_secs(60),
            chaos: false,
        }
    }
}

fn fail(message: &str) -> ! {
    eprintln!("{message}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> Options {
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: usize| -> &str {
            match args.get(i + 1) {
                Some(v) => v.as_str(),
                None => fail(&format!("{arg} expects a value")),
            }
        };
        let mut consumed = 2;
        match arg {
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--addr" => opts.addr = value(i).to_owned(),
            "--users" => match value(i).parse() {
                Ok(n) if n > 0 => opts.users = n,
                _ => fail("--users expects a positive integer"),
            },
            "--requests" => match value(i).parse() {
                Ok(n) if n > 0 => opts.requests = n,
                _ => fail("--requests expects a positive integer"),
            },
            "--concurrency" => match value(i).parse() {
                Ok(n) if n > 0 => opts.concurrency = n,
                _ => fail("--concurrency expects a positive integer"),
            },
            "--rate" => match value(i).parse() {
                Ok(r) if r >= 0.0 => opts.rate = r,
                _ => fail("--rate expects a non-negative number"),
            },
            "--open-loop" => match value(i).parse() {
                Ok(r) if r > 0.0 => {
                    opts.rate = r;
                    opts.open_loop = true;
                }
                _ => fail("--open-loop expects a positive request rate"),
            },
            "--keep-alive" => {
                opts.keep_alive = true;
                consumed = 1;
            }
            "--mechanism" => opts.mechanism = value(i).to_owned(),
            "--query" => opts.query = value(i).to_owned(),
            "--seed" => match value(i).parse() {
                Ok(n) => opts.seed = n,
                _ => fail("--seed expects an integer"),
            },
            "--format" => {
                opts.format = match value(i) {
                    "csv" => WireFormat::Csv,
                    "ndjson" => WireFormat::NdJson,
                    "bin" => WireFormat::Bin,
                    _ => fail("--format expects csv|ndjson|bin"),
                }
            }
            "--jobs" => {
                opts.jobs = true;
                consumed = 1;
            }
            "--distinct" => match value(i).parse() {
                Ok(n) if n > 0 => opts.distinct = n,
                _ => fail("--distinct expects a positive integer"),
            },
            "--dump-workload" => {
                opts.dump = true;
                consumed = 1;
            }
            "--timeout" => match value(i).parse::<u64>() {
                Ok(n) if n > 0 => opts.timeout = Duration::from_secs(n),
                _ => fail("--timeout expects a positive integer (seconds)"),
            },
            "--chaos" => {
                opts.chaos = true;
                consumed = 1;
            }
            other => fail(&format!("unexpected argument: {other}")),
        }
        i += consumed;
    }
    opts
}

/// The transport one client thread issues requests over: a fresh TCP
/// connection per request (the historical behavior, `Connection:
/// close`) or one persistent keep-alive [`Connection`] reused for the
/// thread's whole run.
struct ClientLeg {
    addr: String,
    conn: Option<Connection>,
    keep_alive: bool,
    timeout: Duration,
}

impl ClientLeg {
    fn new(addr: &str, keep_alive: bool, timeout: Duration) -> ClientLeg {
        ClientLeg {
            addr: addr.to_owned(),
            conn: None,
            keep_alive,
            timeout,
        }
    }

    fn send(&mut self, method: &str, target: &str, body: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
        if !self.keep_alive {
            return request_with_timeout(&self.addr, method, target, body, self.timeout);
        }
        if self.conn.is_none() {
            // The Connection survives request failures (it redials on
            // the next call), so one object carries the whole thread's
            // reuse accounting.
            self.conn = Some(Connection::connect(self.addr.as_str(), self.timeout)?);
        }
        let conn = self.conn.as_mut().expect("connected above");
        conn.request(method, target, body)
            .map(|(status, _, body)| (status, body))
    }

    /// `(requests completed, TCP connections dialed)` over this leg.
    fn counts(&self) -> (u64, u64) {
        self.conn
            .as_ref()
            .map_or((0, 0), |c| (c.requests(), c.connects()))
    }
}

/// Per-thread outcome accounting, merged into the summary.
#[derive(Default)]
struct Tally {
    /// Successful request latencies (cold bucket in --jobs mode).
    cold: Vec<Duration>,
    /// Warm (cache-answered) latencies; empty in one-shot mode.
    warm: Vec<Duration>,
    /// Coalesced-onto-an-in-flight-job latencies; --jobs mode only.
    coalesced: Vec<Duration>,
    /// Transport failures (connect/read errors).
    io_errors: usize,
    /// Non-2xx responses by status code.
    by_status: BTreeMap<u16, usize>,
    bytes_in: usize,
    /// Requests completed over keep-alive connections (reuse-rate
    /// accounting; zero without --keep-alive).
    conn_requests: u64,
    /// TCP connections those requests dialed.
    conn_dialed: u64,
}

impl Tally {
    fn failures(&self) -> usize {
        self.io_errors + self.by_status.values().sum::<usize>()
    }

    fn merge(&mut self, other: Tally) {
        self.cold.extend(other.cold);
        self.warm.extend(other.warm);
        self.coalesced.extend(other.coalesced);
        self.io_errors += other.io_errors;
        self.bytes_in += other.bytes_in;
        self.conn_requests += other.conn_requests;
        self.conn_dialed += other.conn_dialed;
        for (status, n) in other.by_status {
            *self.by_status.entry(status).or_default() += n;
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[idx - 1]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn latency_line(label: &str, latencies: &mut [Duration]) {
    if latencies.is_empty() {
        return;
    }
    latencies.sort_unstable();
    let mean = latencies.iter().sum::<Duration>() / latencies.len() as u32;
    println!(
        "{label}: n {:>4}  mean {:.1}  p50 {:.1}  p90 {:.1}  p99 {:.1}  max {:.1}  (ms)",
        latencies.len(),
        ms(mean),
        ms(percentile(latencies, 0.50)),
        ms(percentile(latencies, 0.90)),
        ms(percentile(latencies, 0.99)),
        ms(*latencies.last().expect("non-empty")),
    );
}

/// Scrapes `GET /metrics` into a parsed document. Any failure —
/// transport, non-200, or a malformed exposition — aborts the run with
/// exit 1: a server whose metrics endpoint is broken fails the load
/// test even if every request succeeded.
fn scrape_metrics(addr: &str) -> Scrape {
    let scrape_failed = |message: &str| -> ! {
        eprintln!("scraping /metrics: {message}");
        std::process::exit(1);
    };
    let (status, body) = match request(addr, "GET", "/metrics", b"") {
        Ok(r) => r,
        Err(e) => scrape_failed(&e.to_string()),
    };
    if status != 200 {
        scrape_failed(&format!("HTTP {status}"));
    }
    match std::str::from_utf8(&body)
        .map_err(|e| e.to_string())
        .and_then(parse_scrape)
    {
        Ok(scrape) => scrape,
        Err(e) => scrape_failed(&e),
    }
}

/// Prints what the *server* observed over the run — the before/after
/// delta of its `/metrics` counters, as a cross-check of the
/// client-side tallies (queue waits and sheds show up here first).
fn print_server_delta(before: &Scrape, after: &Scrape) {
    let request_parts: Vec<String> = after
        .by_label("mobipriv_http_requests_total", "status")
        .into_iter()
        .filter_map(|(status, count)| {
            let base = before
                .value("mobipriv_http_requests_total", &[("status", &status)])
                .unwrap_or(0.0);
            let delta = count - base;
            (delta > 0.0).then(|| format!("{status}×{delta:.0}"))
        })
        .collect();
    if !request_parts.is_empty() {
        println!("server:   requests {}", request_parts.join(", "));
    }
    let hits = after.total("mobipriv_cache_hits_total") - before.total("mobipriv_cache_hits_total");
    let misses =
        after.total("mobipriv_cache_misses_total") - before.total("mobipriv_cache_misses_total");
    if hits + misses > 0.0 {
        println!(
            "server:   cache {hits:.0}/{:.0} lookups hit ({:.1}%)",
            hits + misses,
            100.0 * hits / (hits + misses)
        );
    }
    if let Some(peak) = after.value("mobipriv_http_queue_depth_peak", &[]) {
        println!("server:   queue depth high-water {peak:.0}");
    }
    let stage_parts: Vec<String> = STAGES
        .iter()
        .filter_map(|&stage| {
            // Quantiles over the run's window only (bucket deltas); the
            // value is the bucket's upper bound, hence the ≤.
            let p50 = after.histogram_quantile(
                "mobipriv_stage_seconds",
                &[("stage", stage)],
                0.50,
                Some(before),
            )?;
            let p99 = after.histogram_quantile(
                "mobipriv_stage_seconds",
                &[("stage", stage)],
                0.99,
                Some(before),
            )?;
            Some(format!("{stage} p50≤{:.1} p99≤{:.1}", p50 * 1e3, p99 * 1e3))
        })
        .collect();
    if !stage_parts.is_empty() {
        println!("server:   stages (ms) {}", stage_parts.join(", "));
    }
}

/// Shared state of the chaos soak: per-key reference bodies and the
/// invariant-violation log.
struct SoakState {
    /// First successful body per (seed, job?) key — every later 200 for
    /// the same key must be byte-identical (the determinism invariant
    /// chaos must not break). Job results and one-shot responses are
    /// separate keyspaces: jobs materialize CSV while one-shots honor
    /// `--format`.
    baselines: Mutex<HashMap<(u64, bool), Vec<u8>>>,
    /// Hard invariant violations (each one fails the soak).
    violations: Mutex<Vec<String>>,
    ok: AtomicUsize,
    /// Well-formed error responses (expected under chaos).
    errors: AtomicUsize,
}

impl SoakState {
    fn violate(&self, message: String) {
        let mut v = self.violations.lock().expect("soak mutex");
        if v.len() < 32 {
            v.push(message);
        }
    }

    /// A 200 body for `key`: byte-identical to the first one seen, or
    /// an invariant violation.
    fn check_body(&self, key: (u64, bool), body: &[u8], target: &str) {
        let mut baselines = self.baselines.lock().expect("soak mutex");
        match baselines.get(&key) {
            Some(reference) if reference.as_slice() != body => self.violate(format!(
                "byte-identity violated for seed {} ({target}): \
                 {} vs {} reference bytes",
                key.0,
                body.len(),
                reference.len()
            )),
            Some(_) => {}
            None => {
                baselines.insert(key, body.to_vec());
            }
        }
    }
}

/// Statuses a chaos-armed server may legitimately answer: success, the
/// client-timeout close, the transient/injected failure, the degraded
/// shed, and the tripped compute deadline. Anything else (or a hang) is
/// an invariant violation.
fn well_formed(status: u16) -> bool {
    matches!(status, 200 | 408 | 500 | 503 | 504)
}

/// One soak one-shot request: issue, classify, check invariants.
fn soak_request(
    addr: &str,
    target: &str,
    body: &[u8],
    seed: u64,
    timeout: Duration,
    soak: &SoakState,
) {
    match request_with_timeout(addr, "POST", target, body, timeout) {
        Ok((200, response)) => {
            soak.check_body((seed, false), &response, target);
            soak.ok.fetch_add(1, Ordering::Relaxed);
        }
        Ok((status, _)) if well_formed(status) => {
            soak.errors.fetch_add(1, Ordering::Relaxed);
        }
        Ok((status, _)) => soak.violate(format!("unexpected HTTP {status} from {target}")),
        Err(e)
            if e.kind() == std::io::ErrorKind::TimedOut
                || e.kind() == std::io::ErrorKind::WouldBlock =>
        {
            soak.violate(format!("request hung past {timeout:?}: {target}"))
        }
        Err(e) => soak.violate(format!("transport error on {target}: {e}")),
    }
}

/// One soak job cycle: submit → poll to a terminal state → fetch.
/// `failed` (quarantine) is a well-formed outcome; a job that never
/// reaches a terminal state is a violation.
fn soak_job(addr: &str, target: &str, seed: u64, timeout: Duration, soak: &SoakState) {
    let (status, body) = match request_with_timeout(addr, "POST", target, b"", timeout) {
        Ok(r) => r,
        Err(e) => return soak.violate(format!("transport error on {target}: {e}")),
    };
    if status == 503 {
        soak.errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if status != 200 && status != 202 {
        return soak.violate(format!("unexpected HTTP {status} submitting {target}"));
    }
    let Some(id) = json_str_field(&body, "id") else {
        return soak.violate(format!("submission response carries no id ({target})"));
    };
    let poll_deadline = Instant::now() + timeout;
    let mut job_status = json_str_field(&body, "status").unwrap_or_default();
    while job_status != "done" && job_status != "failed" {
        if Instant::now() > poll_deadline {
            return soak.violate(format!("job {id} stuck (last status `{job_status}`)"));
        }
        std::thread::sleep(Duration::from_millis(5));
        match request_with_timeout(addr, "GET", &format!("/v1/jobs/{id}"), b"", timeout) {
            Ok((200, body)) => job_status = json_str_field(&body, "status").unwrap_or_default(),
            Ok((503, _)) => {} // shed under load — poll again
            Ok((status, _)) => return soak.violate(format!("polling job {id}: HTTP {status}")),
            Err(e) => return soak.violate(format!("polling job {id}: {e}")),
        }
    }
    if job_status == "failed" {
        soak.errors.fetch_add(1, Ordering::Relaxed); // quarantined — well-formed
        return;
    }
    match request_with_timeout(addr, "GET", &format!("/v1/results/{id}"), b"", timeout) {
        Ok((200, body)) => {
            soak.check_body((seed, true), &body, target);
            soak.ok.fetch_add(1, Ordering::Relaxed);
        }
        Ok((404, _)) | Ok((503, _)) => {
            soak.errors.fetch_add(1, Ordering::Relaxed); // evicted / shed
        }
        Ok((status, _)) => soak.violate(format!("fetching result {id}: HTTP {status}")),
        Err(e) => soak.violate(format!("fetching result {id}: {e}")),
    }
}

/// The `--chaos` soak: a storm of mixed requests against a chaos-armed
/// server, then the recovery checks. Exits the process (0 = every
/// invariant held).
fn chaos_soak(opts: &Options, body: Vec<u8>) -> ! {
    let timeout = opts.timeout;
    let addr = opts.addr.clone();
    println!(
        "chaos:    soak — {} mixed requests, concurrency {}, {} distinct keys, timeout {:?}",
        opts.requests, opts.concurrency, opts.distinct, timeout
    );
    // Register the dataset once so job cycles can reference it.
    let register_target = format!("/v1/datasets?format={}", opts.format.name());
    let (status, response) =
        match request_with_timeout(&addr, "POST", &register_target, &body, timeout) {
            Ok(r) => r,
            Err(e) => fail(&format!("cannot reach {addr}: {e}")),
        };
    if status != 200 {
        fail(&format!("dataset registration answered HTTP {status}"));
    }
    let digest = json_str_field(&response, "digest")
        .unwrap_or_else(|| fail("registration response carries no digest"));
    let metrics_before = scrape_metrics(&addr);

    let soak = Arc::new(SoakState {
        baselines: Mutex::new(HashMap::new()),
        violations: Mutex::new(Vec::new()),
        ok: AtomicUsize::new(0),
        errors: AtomicUsize::new(0),
    });
    let make_target = |i: usize| -> (String, u64, bool) {
        let seed = opts.seed.wrapping_add((i % opts.distinct) as u64);
        let is_job = i % 7 == 3;
        let mut target = if is_job {
            format!(
                "/v1/jobs?dataset={digest}&mechanism={}&seed={seed}",
                opts.mechanism
            )
        } else {
            format!(
                "/v1/anonymize?mechanism={}&seed={seed}&format={}",
                opts.mechanism,
                opts.format.name()
            )
        };
        if !opts.query.is_empty() {
            target.push('&');
            target.push_str(&opts.query);
        }
        // Deadline probes: a zero compute budget trips deterministically
        // (504) unless the cache already holds the key (200) — both
        // legitimate, and the key must stay immediately recomputable.
        if !is_job && i % 5 == 4 {
            target.push_str("&timeout_ms=0");
        }
        (target, seed, is_job)
    };

    let body = Arc::new(body);
    let next = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let mut clients = Vec::new();
    for _ in 0..opts.concurrency {
        let (body, soak, next) = (Arc::clone(&body), Arc::clone(&soak), Arc::clone(&next));
        let (addr, requests) = (addr.clone(), opts.requests);
        let targets: Vec<(String, u64, bool)> = (0..requests).map(make_target).collect();
        clients.push(std::thread::spawn(move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= requests {
                break;
            }
            let (target, seed, is_job) = &targets[i];
            if *is_job {
                soak_job(&addr, target, *seed, timeout, &soak);
            } else {
                soak_request(&addr, target, &body, *seed, timeout, &soak);
            }
        }));
    }
    for client in clients {
        client.join().expect("soak client panicked");
    }
    let storm = started.elapsed();
    println!(
        "storm:    {} ok, {} well-formed errors in {:.2} s",
        soak.ok.load(Ordering::Relaxed),
        soak.errors.load(Ordering::Relaxed),
        storm.as_secs_f64()
    );

    // No stuck flights: every key must become computable again — errors
    // are still legitimate while chaos keeps injecting, so retry each
    // key until a 200 (which must match the baseline) or the deadline.
    for k in 0..opts.distinct {
        let seed = opts.seed.wrapping_add(k as u64);
        let target = format!(
            "/v1/anonymize?mechanism={}&seed={seed}&format={}",
            opts.mechanism,
            opts.format.name()
        );
        let deadline = Instant::now() + timeout;
        loop {
            match request_with_timeout(&addr, "POST", &target, &body, timeout) {
                Ok((200, response)) => {
                    soak.check_body((seed, false), &response, &target);
                    break;
                }
                Ok(_) | Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Ok((status, _)) => {
                    soak.violate(format!("key for seed {seed} stuck (last HTTP {status})"));
                    break;
                }
                Err(e) => {
                    soak.violate(format!("key for seed {seed} stuck ({e})"));
                    break;
                }
            }
        }
    }

    // Breaker recovery: cold computes on fresh seeds eventually land a
    // successful half-open probe; the gauge must read closed again.
    let deadline = Instant::now() + timeout;
    let mut probe_seed = opts.seed.wrapping_add(1_000_000);
    let recovered = loop {
        let scrape = scrape_metrics(&addr);
        match scrape.value("mobipriv_breaker_state", &[]) {
            Some(0.0) => break true,
            None => {
                soak.violate("mobipriv_breaker_state missing from /metrics".to_owned());
                break false;
            }
            Some(_) if Instant::now() > deadline => break false,
            Some(_) => {
                let target = format!(
                    "/v1/anonymize?mechanism={}&seed={probe_seed}&format={}",
                    opts.mechanism,
                    opts.format.name()
                );
                let _ = request_with_timeout(&addr, "POST", &target, &body, timeout);
                probe_seed = probe_seed.wrapping_add(1);
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    };
    if !recovered {
        soak.violate("circuit breaker did not re-close after the storm".to_owned());
    }

    // The chaos/resilience counters must exist — and chaos must have
    // actually bitten, or the soak proved nothing.
    let metrics_after = scrape_metrics(&addr);
    let injected = metrics_after.total("mobipriv_chaos_injections_total")
        - metrics_before.total("mobipriv_chaos_injections_total");
    if injected <= 0.0 {
        soak.violate("chaos injected no faults — is the server running with --chaos?".to_owned());
    }
    for counter in [
        "mobipriv_retries_total",
        "mobipriv_deadline_exceeded_total",
        "mobipriv_client_timeouts_total",
        "mobipriv_overload_shed_total",
    ] {
        if metrics_after.value(counter, &[]).is_none() {
            soak.violate(format!("{counter} missing from /metrics"));
        }
    }
    println!(
        "recovery: breaker closed; {injected:.0} faults injected, \
         {:.0} deadline trips, {:.0} retries, {:.0} sheds (server totals)",
        metrics_after.total("mobipriv_deadline_exceeded_total"),
        metrics_after.total("mobipriv_retries_total"),
        metrics_after.total("mobipriv_overload_shed_total"),
    );

    let violations = soak.violations.lock().expect("soak mutex");
    if violations.is_empty() {
        println!("chaos:    every invariant held");
        std::process::exit(0);
    }
    for v in violations.iter() {
        eprintln!("violation: {v}");
    }
    std::process::exit(1);
}

/// One submit→poll→fetch cycle against the job engine. Returns the
/// submission classification (`enqueued`/`coalesced`/`cached`).
fn job_cycle(
    leg: &mut ClientLeg,
    submit_target: &str,
    tally: &mut Tally,
    sent: Instant,
) -> Option<String> {
    let (status, body) = match leg.send("POST", submit_target, b"") {
        Ok(r) => r,
        Err(_) => {
            tally.io_errors += 1;
            return None;
        }
    };
    if status != 200 && status != 202 {
        *tally.by_status.entry(status).or_default() += 1;
        return None;
    }
    let Some(id) = json_str_field(&body, "id") else {
        *tally.by_status.entry(0).or_default() += 1;
        return None;
    };
    let submitted = json_str_field(&body, "submitted").unwrap_or_default();
    let mut job_status = json_str_field(&body, "status").unwrap_or_default();
    // Done at submission time = the cache answered; no computation was
    // waited on, whether the record was fresh ("cached") or an old done
    // job coalesced onto ("coalesced").
    let warm = job_status == "done";
    let poll_target = format!("/v1/jobs/{id}");
    // A wedged job must fail the run with the breakdown, not hang the
    // client (and the CI smoke job) forever.
    let poll_deadline = Instant::now() + Duration::from_secs(120);
    while job_status != "done" {
        if job_status == "failed" {
            *tally.by_status.entry(500).or_default() += 1;
            return None;
        }
        if Instant::now() > poll_deadline {
            tally.io_errors += 1;
            return None;
        }
        std::thread::sleep(Duration::from_millis(2));
        match leg.send("GET", &poll_target, b"") {
            Ok((200, body)) => {
                job_status = json_str_field(&body, "status").unwrap_or_default();
            }
            Ok((status, _)) => {
                *tally.by_status.entry(status).or_default() += 1;
                return None;
            }
            Err(_) => {
                tally.io_errors += 1;
                return None;
            }
        }
    }
    match leg.send("GET", &format!("/v1/results/{id}"), b"") {
        Ok((200, body)) => {
            let latency = sent.elapsed();
            tally.bytes_in += body.len();
            if warm {
                tally.warm.push(latency);
            } else if submitted == "enqueued" {
                tally.cold.push(latency);
            } else {
                tally.coalesced.push(latency);
            }
            Some(submitted)
        }
        Ok((status, _)) => {
            *tally.by_status.entry(status).or_default() += 1;
            None
        }
        Err(_) => {
            tally.io_errors += 1;
            None
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args);

    let workload = scenarios::serving_day(opts.users, opts.seed);
    let serialize = |dataset: &Dataset, out: &mut Vec<u8>| match opts.format {
        WireFormat::Csv => write_csv(dataset, out),
        WireFormat::NdJson => write_ndjson(dataset, out),
        WireFormat::Bin => write_bin(dataset, out),
    };
    let mut body = Vec::new();
    serialize(&workload.dataset, &mut body).expect("serialize workload");
    if opts.dump {
        std::io::stdout().write_all(&body).expect("write workload");
        return;
    }
    if opts.chaos {
        chaos_soak(&opts, body);
    }
    let traces = workload.dataset.len();
    let fixes = workload.dataset.total_fixes();
    drop(workload);

    println!(
        "workload: {} users, {traces} traces, {fixes} fixes, {}-byte {} body (seed {})",
        opts.users,
        body.len(),
        opts.format.name(),
        opts.seed
    );

    // Client-side wire-format throughput: how fast this machine parses
    // and re-serializes the chosen format, independent of the server —
    // the number to compare across --format runs.
    {
        let mfix = fixes as f64 / 1e6;
        let t = Instant::now();
        let reparsed = match opts.format {
            WireFormat::Csv => read_csv(body.as_slice()),
            WireFormat::NdJson => read_ndjson(body.as_slice()),
            WireFormat::Bin => read_bin(body.as_slice()),
        }
        .expect("reparse workload");
        let parse = mfix / t.elapsed().as_secs_f64().max(1e-9);
        let t = Instant::now();
        let mut rewritten = Vec::with_capacity(body.len());
        serialize(&reparsed, &mut rewritten).expect("reserialize workload");
        let write = mfix / t.elapsed().as_secs_f64().max(1e-9);
        println!(
            "format:   {} — parse {parse:.1} Mfix/s, serialize {write:.1} Mfix/s ({:.1} B/fix)",
            opts.format.name(),
            body.len() as f64 / fixes.max(1) as f64
        );
    }

    let digest = if opts.jobs {
        // Register once (in the chosen wire format — the digest is
        // format-independent); every job request references the digest.
        let register_target = format!("/v1/datasets?format={}", opts.format.name());
        let registered_at = Instant::now();
        let (status, response) = match request(&opts.addr, "POST", &register_target, &body) {
            Ok(r) => r,
            Err(e) => fail(&format!("cannot reach {}: {e}", opts.addr)),
        };
        if status != 200 {
            fail(&format!("dataset registration answered HTTP {status}"));
        }
        let digest = json_str_field(&response, "digest")
            .unwrap_or_else(|| fail("registration response carries no digest"));
        println!(
            "registered: digest {digest} in {:.1} ms (register-once, publish-many)",
            ms(registered_at.elapsed())
        );
        Some(digest)
    } else {
        None
    };

    // The target for request i. One-shot mode always POSTs the same
    // anonymize query; --jobs mode cycles through `distinct` seeds so
    // each key sees both a cold and (requests/distinct - 1) warm hits.
    let make_target = {
        let (digest, mechanism, extra) =
            (digest.clone(), opts.mechanism.clone(), opts.query.clone());
        let (seed, distinct, format) = (opts.seed, opts.distinct, opts.format);
        move |i: usize| -> String {
            let mut target = match &digest {
                Some(digest) => format!(
                    "/v1/jobs?dataset={digest}&mechanism={mechanism}&seed={}",
                    seed.wrapping_add((i % distinct) as u64)
                ),
                None => format!(
                    "/v1/anonymize?mechanism={mechanism}&seed={seed}&format={}",
                    format.name()
                ),
            };
            if !extra.is_empty() {
                target.push('&');
                target.push_str(&extra);
            }
            target
        }
    };

    println!(
        "target:   http://{}{} — {} requests, concurrency {}{}{}",
        opts.addr,
        make_target(0),
        opts.requests,
        opts.concurrency,
        if opts.jobs {
            format!(" ({} distinct job keys)", opts.distinct)
        } else {
            String::new()
        },
        if opts.rate > 0.0 {
            format!(
                ", {} req/s{}",
                opts.rate,
                if opts.open_loop { " (open loop)" } else { "" }
            )
        } else {
            String::new()
        }
    );
    if opts.keep_alive {
        println!("transport: keep-alive (one persistent connection per client thread)");
    }

    if !opts.jobs {
        // Connectivity probe before unleashing the fleet.
        match request(&opts.addr, "POST", &make_target(0), &body) {
            Ok((200, _)) => {}
            Ok((status, _)) => fail(&format!("probe request answered HTTP {status}")),
            Err(e) => fail(&format!("cannot reach {}: {e}", opts.addr)),
        }
    }

    // Server-side baseline: the /metrics counters before the run, so
    // the summary can print exactly what this run added.
    let metrics_before = scrape_metrics(&opts.addr);

    let body = Arc::new(body);
    let addr = Arc::new(opts.addr.clone());
    let make_target = Arc::new(make_target);
    let started = Instant::now();

    // --jobs: publish each distinct view once, sequentially, before the
    // concurrent phase — the register-once/publish-many lifecycle. The
    // cold pass goes through the *one-shot* surface (full body upload +
    // parse + compute), i.e. what every request cost before the
    // registry existed; because the sync path and the job engine share
    // one content-addressed cache, it also warms every job key (with
    // --format csv/ndjson — jobs materialize CSV, so a `bin` cold pass
    // lives in its own `wire=bin` keyspace and the first job per key
    // computes cold), so the concurrent phase measures pure
    // publish-many serving.
    let mut cold_tally = Tally::default();
    let concurrent_from = if opts.jobs {
        let cold = opts.distinct.min(opts.requests);
        for i in 0..cold {
            let mut target = format!(
                "/v1/anonymize?mechanism={}&seed={}&format={}",
                opts.mechanism,
                opts.seed.wrapping_add((i % opts.distinct) as u64),
                opts.format.name()
            );
            if !opts.query.is_empty() {
                target.push('&');
                target.push_str(&opts.query);
            }
            let sent = Instant::now();
            match request(&opts.addr, "POST", &target, &body) {
                Ok((200, response)) => {
                    cold_tally.cold.push(sent.elapsed());
                    cold_tally.bytes_in += response.len();
                }
                Ok((status, _)) => {
                    *cold_tally.by_status.entry(status).or_default() += 1;
                }
                Err(_) => cold_tally.io_errors += 1,
            }
        }
        cold
    } else {
        0
    };
    let next = Arc::new(AtomicUsize::new(concurrent_from));
    let mut clients = Vec::new();
    for _ in 0..opts.concurrency {
        let (body, addr, next, make_target) = (
            Arc::clone(&body),
            Arc::clone(&addr),
            Arc::clone(&next),
            Arc::clone(&make_target),
        );
        let (requests, rate, jobs) = (opts.requests, opts.rate, opts.jobs);
        let (keep_alive, open_loop, timeout) = (opts.keep_alive, opts.open_loop, opts.timeout);
        clients.push(std::thread::spawn(move || {
            let mut tally = Tally::default();
            let mut leg = ClientLeg::new(&addr, keep_alive, timeout);
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= requests {
                    break;
                }
                let mut sent = Instant::now();
                if rate > 0.0 {
                    // Paced arrivals: request i is due at i/rate.
                    let due = Duration::from_secs_f64(i as f64 / rate);
                    if let Some(wait) = due.checked_sub(started.elapsed()) {
                        std::thread::sleep(wait);
                        sent = Instant::now();
                    } else if open_loop {
                        // Behind schedule: open-loop latency is charged
                        // from the scheduled arrival, so the backlog a
                        // saturated server builds is visible instead of
                        // silently thinning the arrival process.
                        sent = started + due;
                    }
                }
                let target = make_target(i);
                if jobs {
                    job_cycle(&mut leg, &target, &mut tally, sent);
                } else {
                    match leg.send("POST", &target, &body) {
                        Ok((200, response)) => {
                            tally.cold.push(sent.elapsed());
                            tally.bytes_in += response.len();
                        }
                        Ok((status, _)) => {
                            *tally.by_status.entry(status).or_default() += 1;
                        }
                        Err(_) => tally.io_errors += 1,
                    }
                }
            }
            let (conn_requests, conn_dialed) = leg.counts();
            tally.conn_requests = conn_requests;
            tally.conn_dialed = conn_dialed;
            tally
        }));
    }
    let mut tally = cold_tally;
    for client in clients {
        tally.merge(client.join().expect("client thread panicked"));
    }
    let elapsed = started.elapsed();

    // Sequential warm probe for the speedup line: under high
    // concurrency the in-run warm latencies include queue wait, which
    // measures saturation, not serving latency. One uncontended cycle
    // per key is the like-for-like counterpart of the sequential cold
    // pass. Probe requests are not counted in the run totals.
    let mut probe = Tally::default();
    if opts.jobs {
        let mut leg = ClientLeg::new(&opts.addr, opts.keep_alive, opts.timeout);
        for i in 0..opts.distinct.min(opts.requests) {
            job_cycle(&mut leg, &make_target(i), &mut probe, Instant::now());
        }
    }

    let ok = tally.cold.len() + tally.warm.len() + tally.coalesced.len();
    let failures = tally.failures();
    println!(
        "result:   {ok} ok, {failures} failed in {:.2} s ({} B received)",
        elapsed.as_secs_f64(),
        tally.bytes_in
    );
    if failures > 0 {
        let mut parts: Vec<String> = tally
            .by_status
            .iter()
            .map(|(status, n)| {
                if *status == 0 {
                    format!("unparseable×{n}")
                } else {
                    format!("HTTP {status}×{n}")
                }
            })
            .collect();
        if tally.io_errors > 0 {
            parts.push(format!("io×{}", tally.io_errors));
        }
        println!("errors:   {}", parts.join(", "));
    }
    if ok > 0 {
        let throughput = ok as f64 / elapsed.as_secs_f64();
        println!(
            "throughput: {throughput:.1} req/s, {:.2} Mfix/s anonymized",
            throughput * fixes as f64 / 1e6
        );
    }
    if opts.keep_alive && tally.conn_requests > 0 {
        let reuse = 1.0 - tally.conn_dialed as f64 / tally.conn_requests as f64;
        println!(
            "reuse:    {} connections for {} requests ({:.1}% reused)",
            tally.conn_dialed,
            tally.conn_requests,
            100.0 * reuse
        );
    }
    if opts.jobs {
        latency_line("cold  ", &mut tally.cold);
        latency_line("warm  ", &mut tally.warm);
        latency_line("coal  ", &mut tally.coalesced);
        // `cold` = full-body one-shot (the pre-registry cost of any
        // request), sequential; the warm side is the sequential probe
        // so both sides measure serving latency, not queueing.
        probe.warm.sort_unstable();
        if !tally.cold.is_empty() && !probe.warm.is_empty() {
            let cold_p50 = percentile(&tally.cold, 0.50);
            let warm_p50 = percentile(&probe.warm, 0.50);
            println!(
                "speedup:  cold p50 / warm p50 = {:.1}x (sequential probe, n={})",
                ms(cold_p50) / ms(warm_p50).max(1e-6),
                probe.warm.len()
            );
        }
        let hits = tally.warm.len() + tally.coalesced.len();
        if ok > 0 {
            println!(
                "hit rate: {hits}/{ok} requests answered from cache ({:.1}%)",
                100.0 * hits as f64 / ok as f64
            );
        }
        // The server's own counters, when reachable.
        if let Ok((200, stats)) = request(&opts.addr, "GET", "/v1/stats", b"") {
            if let Ok(text) = std::str::from_utf8(&stats) {
                println!("server:   {}", text.trim_end());
            }
        }
    } else {
        latency_line("latency", &mut tally.cold);
    }
    let metrics_after = scrape_metrics(&opts.addr);
    print_server_delta(&metrics_before, &metrics_after);
    if failures > 0 {
        std::process::exit(1);
    }
}
