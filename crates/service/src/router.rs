//! The shard router: horizontal scale-out for the serving stack.
//!
//! `mobipriv-serve --route shard1,shard2,…` runs this thin proxy
//! instead of a full serving node. Each shard is an ordinary
//! single-node server; the router owns no datasets, caches or jobs —
//! it only decides *which shard owns a key* and forwards bytes.
//!
//! # Placement
//!
//! Ownership is rendezvous (highest-random-weight) hashing over the
//! dataset digest: every shard gets a deterministic score
//! `mix(fnv1a64(shard ‖ 0x00 ‖ key))` and the highest score owns the
//! key. Rendezvous hashing is stable under shard-list reordering (the
//! score only depends on the shard *name*), assigns keys near-uniformly
//! and, when a shard is removed, remaps only the keys that shard owned
//! — every other key keeps its owner ([`rendezvous_rank`] has the
//! property tests).
//!
//! # Forwarding
//!
//! * Keyed routes (`/v1/anonymize`, `/v1/datasets`, `/v1/jobs` with a
//!   `dataset` digest, `/v1/datasets/:digest`) go to the owning shard
//!   over a pooled keep-alive [`Connection`](crate::client::Connection)
//!   and get **no failover**: a dead shard turns its own key range into
//!   `503`s (counted per shard in `mobipriv_route_errors_total`) while
//!   every other range keeps serving.
//! * Id-based lookups (`/v1/jobs/:id`, `/v1/results/:key`,
//!   `/v1/traces/:id`) are not invertible to a dataset digest, so they
//!   fan out and the first non-404 answer wins.
//! * `GET /metrics` and `GET /v1/stats` fan out to every shard and
//!   *fold*: counters, gauges and histogram buckets sum exactly
//!   ([`Scrape::fold`]), so the router presents cluster totals in the
//!   same exposition format a single node serves.
//! * The body the client sent is forwarded byte-for-byte (the router
//!   parses it only to learn the digest), so responses stay
//!   byte-identical to a single-node deployment.
//!
//! The downstream (client-facing) side speaks the same persistent
//! HTTP/1.1 the single-node server does: keep-alive with idle
//! deadlines, a per-connection request cap, and graceful drain on
//! shutdown.

use std::io::{BufReader, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mobipriv_eval::Json;
use mobipriv_model::digest::{dataset_digest, digest_hex, fnv1a64};
use mobipriv_model::DatasetStream;
use mobipriv_obs::logging::{self, FieldValue};
use mobipriv_obs::metrics::{render_merged, Counter, Registry};
use mobipriv_obs::scrape::{self, Scrape};

use crate::client::{Connection, Headers};
use crate::handlers::body_format;
use crate::http::{
    read_head, stream_body, write_response, DeadlineReader, NextRequest, RequestHead,
};
use crate::ServiceError;

/// How often a parked keep-alive connection re-checks the shutdown
/// flag while waiting for its next request (mirrors the single-node
/// server's poll slice).
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Per-read timeout and overall deadline while draining unread body
/// after the last response (mirrors the single-node server).
const DRAIN_TIMEOUT: Duration = Duration::from_secs(2);

// ---------------------------------------------------------------------------
// Rendezvous hashing
// ---------------------------------------------------------------------------

/// `splitmix64`'s finalizer: a full-avalanche bijection that spreads
/// FNV's weak low bits over the whole word, so comparing scores is fair
/// even for near-identical inputs.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The rendezvous score of `shard` for `key`: the shard with the
/// highest score owns the key. The `0x00` separator keeps
/// `("ab","c")` and `("a","bc")` from colliding.
pub fn rendezvous_score(shard: &str, key: &str) -> u64 {
    let mut bytes = Vec::with_capacity(shard.len() + 1 + key.len());
    bytes.extend_from_slice(shard.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(key.as_bytes());
    mix(fnv1a64(&bytes))
}

/// Shard indices ordered by descending rendezvous score for `key`
/// (ties broken by shard name, so the order is total). Index 0 is the
/// owner; the rest is the deterministic failover order for stateless
/// routes. The result depends only on the *set* of shard names, never
/// on their order in `shards`.
pub fn rendezvous_rank(shards: &[String], key: &str) -> Vec<usize> {
    let mut order: Vec<usize> = (0..shards.len()).collect();
    order.sort_by(|&a, &b| {
        rendezvous_score(&shards[b], key)
            .cmp(&rendezvous_score(&shards[a], key))
            .then_with(|| shards[a].cmp(&shards[b]))
    });
    order
}

/// The index of the shard owning `key`, or `None` for an empty list.
pub fn rendezvous_owner(shards: &[String], key: &str) -> Option<usize> {
    (0..shards.len()).max_by(|&a, &b| {
        rendezvous_score(&shards[a], key)
            .cmp(&rendezvous_score(&shards[b], key))
            .then_with(|| shards[b].cmp(&shards[a]))
    })
}

// ---------------------------------------------------------------------------
// Configuration and lifecycle
// ---------------------------------------------------------------------------

/// Tunables for [`Router::bind`] (the `--route` mode of
/// `mobipriv-serve`). The connection-layer knobs mean exactly what
/// they do on [`ServerConfig`](crate::ServerConfig).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Shard addresses (`host:port`), each an ordinary single-node
    /// `mobipriv-serve`. Order does not matter for placement.
    pub shards: Vec<String>,
    /// Worker threads (each proxies one connection at a time).
    pub workers: usize,
    /// Connections the acceptor may queue ahead of the workers before
    /// shedding load with `503`s.
    pub queue_depth: usize,
    /// Upper bound on a request body, after transfer decoding.
    pub max_body_bytes: u64,
    /// Per-request wall-clock budget (and per-socket timeout), both
    /// downstream and toward the shards.
    pub timeout: Duration,
    /// How long a client's keep-alive connection may sit idle between
    /// requests before the router closes it.
    pub idle_timeout: Duration,
    /// Requests served on one client connection before the router
    /// closes it.
    pub max_requests_per_conn: usize,
    /// Upstream keep-alive connections per shard, total (in use +
    /// pooled idle). A shard worker is pinned to a connection for that
    /// connection's lifetime, so dialing more connections than a shard
    /// has workers only parks the extras in its accept queue; the
    /// default matches the single-node default worker count, and
    /// checkout *blocks* (up to `timeout`) rather than over-dialing.
    pub upstream_conns: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: Vec::new(),
            workers: 4,
            queue_depth: 64,
            max_body_bytes: 64 * 1024 * 1024,
            timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(5),
            max_requests_per_conn: 1000,
            upstream_conns: 4,
        }
    }
}

/// A bound-but-not-yet-serving router (same two-phase split as
/// [`Server`](crate::Server), so callers learn the ephemeral port
/// before traffic starts).
#[derive(Debug)]
pub struct Router {
    listener: TcpListener,
    config: RouterConfig,
}

impl Router {
    /// Binds the listening socket.
    ///
    /// # Errors
    ///
    /// Returns the `bind(2)` error, or `InvalidInput` when the shard
    /// list is empty — a router with nowhere to forward is a
    /// misconfiguration, not a degraded state.
    pub fn bind(config: RouterConfig) -> std::io::Result<Router> {
        if config.shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one shard",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Router { listener, config })
    }

    /// The bound address (with the real port when `addr` asked for 0).
    ///
    /// # Errors
    ///
    /// Propagates `getsockname(2)` failure (not observed in practice).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the acceptor and worker threads, returning a handle for
    /// shutdown.
    ///
    /// # Errors
    ///
    /// Propagates `getsockname(2)` failure.
    pub fn spawn(self) -> std::io::Result<RouterHandle> {
        let addr = self.local_addr()?;
        let state = Arc::new(RouterState::new(self.config));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (sender, receiver) =
            std::sync::mpsc::sync_channel::<TcpStream>(state.config.queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));
        let workers: Vec<JoinHandle<()>> = (0..state.config.workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let state = Arc::clone(&state);
                let shutdown = Arc::clone(&shutdown);
                std::thread::Builder::new()
                    .name(format!("mobipriv-route-{i}"))
                    .spawn(move || worker_loop(&receiver, &state, &shutdown))
                    .expect("spawn router worker thread")
            })
            .collect();
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let state = Arc::clone(&state);
            let listener = self.listener;
            std::thread::Builder::new()
                .name("mobipriv-route-acceptor".to_owned())
                .spawn(move || accept_loop(&listener, sender, &shutdown, &state))
                .expect("spawn router acceptor thread")
        };
        logging::info(
            "service::router",
            None,
            "router listening",
            &[
                ("addr", FieldValue::Str(&addr.to_string())),
                ("shards", FieldValue::U64(state.shards.len() as u64)),
            ],
        );
        Ok(RouterHandle {
            addr,
            shutdown,
            acceptor,
            workers,
        })
    }

    /// Serves until the process exits (the foreground mode of
    /// `mobipriv-serve --route`).
    ///
    /// # Errors
    ///
    /// Propagates `getsockname(2)` failure from [`Router::spawn`].
    pub fn run(self) -> std::io::Result<()> {
        let handle = self.spawn()?;
        let _ = handle.acceptor.join();
        for worker in handle.workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Control handle for a running router.
pub struct RouterHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for RouterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl RouterHandle {
    /// The address the router is reachable on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stops accepting, finishes in-flight
    /// requests, joins every thread. The shards are *not* touched —
    /// they are independent processes with their own lifecycles.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match self.addr {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        if TcpStream::connect_timeout(&wake, Duration::from_secs(1)).is_ok() {
            let _ = self.acceptor.join();
            for worker in self.workers {
                let _ = worker.join();
            }
        }
        // Same exotic-bind caveat as ServerHandle::shutdown: if even
        // loopback cannot connect, the threads are left to exit on the
        // next connection rather than hanging the caller.
    }
}

// ---------------------------------------------------------------------------
// Shared state and the upstream leg
// ---------------------------------------------------------------------------

/// The bookkeeping behind one shard's connection pool: the idle
/// connections plus how many are checked out to workers right now.
/// `idle.len() + out` never exceeds the configured cap.
struct Pool {
    idle: Vec<Connection>,
    out: usize,
}

/// One upstream shard: its address and a *bounded* pool of keep-alive
/// connections, plus the per-shard forwarding counters. The bound is
/// load-bearing, not an optimization: a shard worker stays pinned to a
/// keep-alive connection until it closes, so a router that dialed an
/// unbounded number of connections would park most of them in the
/// shard's accept queue behind pinned workers — each stranded request
/// stalling until some other connection idles out. Checkout therefore
/// blocks for a free connection (or a permit to dial) instead.
struct Shard {
    name: String,
    cap: usize,
    pool: Mutex<Pool>,
    checkout: Condvar,
    requests: Counter,
    errors: Counter,
}

impl Shard {
    /// Sends one request to this shard over a pooled connection and
    /// returns the response; the connection goes back to the pool
    /// while it stays usable.
    fn call(
        &self,
        timeout: Duration,
        method: &str,
        target: &str,
        content_type: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Headers, Vec<u8>)> {
        self.requests.inc();
        let mut conn = match self.checkout(timeout) {
            Ok(Some(conn)) => conn,
            Ok(None) => match Connection::connect(self.name.as_str(), timeout) {
                Ok(conn) => conn,
                Err(e) => {
                    self.release(None);
                    self.errors.inc();
                    return Err(e);
                }
            },
            Err(e) => {
                self.errors.inc();
                return Err(e);
            }
        };
        match conn.request_typed(method, target, content_type, body) {
            Ok(response) => {
                self.release(conn.is_connected().then_some(conn));
                Ok(response)
            }
            Err(e) => {
                self.release(None);
                self.errors.inc();
                Err(e)
            }
        }
    }

    /// Blocks until this shard has capacity: `Ok(Some)` is a pooled
    /// connection to reuse, `Ok(None)` a permit to dial a new one.
    /// Either way the caller owns one slot and must [`release`] it.
    ///
    /// # Errors
    ///
    /// `TimedOut` when the pool stays saturated past `timeout`.
    ///
    /// [`release`]: Shard::release
    fn checkout(&self, timeout: Duration) -> std::io::Result<Option<Connection>> {
        let deadline = Instant::now() + timeout;
        let mut pool = self.pool.lock().expect("shard pool poisoned");
        loop {
            if let Some(conn) = pool.idle.pop() {
                pool.out += 1;
                return Ok(Some(conn));
            }
            if pool.out < self.cap {
                pool.out += 1;
                return Ok(None);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "upstream connection pool saturated",
                ));
            }
            pool = self
                .checkout
                .wait_timeout(pool, deadline - now)
                .expect("shard pool poisoned")
                .0;
        }
    }

    /// Returns a checkout's slot, and the connection itself when it is
    /// still usable (`None` drops the slot so a waiter may redial).
    fn release(&self, conn: Option<Connection>) {
        let mut pool = self.pool.lock().expect("shard pool poisoned");
        pool.out -= 1;
        if let Some(conn) = conn {
            pool.idle.push(conn);
        }
        drop(pool);
        self.checkout.notify_one();
    }
}

/// Everything the router's workers share.
struct RouterState {
    config: RouterConfig,
    shards: Vec<Shard>,
    /// Shard names, index-aligned with `shards` (the rendezvous
    /// functions take the name list).
    names: Vec<String>,
    registry: Registry,
    requests_total: Counter,
}

impl RouterState {
    fn new(config: RouterConfig) -> RouterState {
        let registry = Registry::new();
        let requests_total = registry.counter(
            "mobipriv_router_http_requests_total",
            &[],
            "Requests the router has answered (any route, any status)",
        );
        let shards = config
            .shards
            .iter()
            .map(|name| Shard {
                name: name.clone(),
                cap: config.upstream_conns.max(1),
                pool: Mutex::new(Pool {
                    idle: Vec::new(),
                    out: 0,
                }),
                checkout: Condvar::new(),
                requests: registry.counter(
                    "mobipriv_route_requests_total",
                    &[("shard", name)],
                    "Requests forwarded to this shard",
                ),
                errors: registry.counter(
                    "mobipriv_route_errors_total",
                    &[("shard", name)],
                    "Forwarding failures (connect/send/read) toward this shard",
                ),
            })
            .collect();
        let names = config.shards.clone();
        RouterState {
            config,
            shards,
            names,
            registry,
            requests_total,
        }
    }
}

// ---------------------------------------------------------------------------
// Downstream connection handling
// ---------------------------------------------------------------------------

fn accept_loop(
    listener: &TcpListener,
    sender: SyncSender<TcpStream>,
    shutdown: &AtomicBool,
    state: &RouterState,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_read_timeout(Some(state.config.timeout));
        let _ = stream.set_write_timeout(Some(state.config.timeout));
        // Same delayed-ACK hazard as the server's accept loop: a
        // keep-alive response tail must not wait for Nagle.
        let _ = stream.set_nodelay(true);
        match sender.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) | Err(TrySendError::Disconnected(stream)) => {
                logging::warn(
                    "service::router",
                    None,
                    "connection shed: router queue full",
                    &[(
                        "queue_depth",
                        FieldValue::U64(state.config.queue_depth as u64),
                    )],
                );
                crate::server::shed(stream);
            }
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<TcpStream>>, state: &RouterState, shutdown: &AtomicBool) {
    loop {
        let stream = {
            let guard = receiver.lock().expect("router queue mutex poisoned");
            guard.recv()
        };
        match stream {
            Ok(stream) => {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_router_connection(stream, state, shutdown);
                }));
            }
            Err(_) => break,
        }
    }
}

/// Serves one client connection end to end, with the same keep-alive
/// contract as the single-node server: per-request deadlines, an idle
/// deadline between requests, a request cap, close-on-error, and a
/// half-close + bounded drain at the end.
fn handle_router_connection(stream: TcpStream, state: &RouterState, shutdown: &AtomicBool) {
    let config = &state.config;
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = DeadlineReader::new(BufReader::new(read_half), config.timeout);
    let mut writer = stream;
    let mut served: usize = 0;
    loop {
        let next = if served == 0 {
            reader.set_deadline(config.timeout);
            read_head(&mut reader).map(NextRequest::Head)
        } else {
            reader.next_request(config.idle_timeout, IDLE_POLL, config.timeout, shutdown)
        };
        let (proxied, keep) = match next {
            Ok(NextRequest::Head(head)) => {
                if head
                    .header("expect")
                    .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
                {
                    let _ = writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
                    let _ = writer.flush();
                }
                // The whole body is buffered before forwarding: the
                // router must hash it to pick the owner, and buffering
                // also decouples a slow client from the shard
                // connection. The single-node body limit caps memory.
                let mut body = Vec::new();
                let body_ok = match head.framing() {
                    Ok(framing) => {
                        match stream_body(&mut reader, framing, config.max_body_bytes, |chunk| {
                            body.extend_from_slice(chunk);
                            Ok(())
                        }) {
                            Ok(_) => Ok(()),
                            Err(e) => Err(e),
                        }
                    }
                    Err(e) => Err(e),
                };
                let (proxied, body_clean) = match body_ok {
                    Ok(()) => (dispatch(&head, &body, state), true),
                    Err(e) => (Proxied::from_error(&e), false),
                };
                served += 1;
                let keep = head.keep_alive()
                    && proxied.status < 400
                    && body_clean
                    && served < config.max_requests_per_conn
                    && !shutdown.load(Ordering::SeqCst);
                (proxied, keep)
            }
            Ok(NextRequest::Closed | NextRequest::IdleTimeout | NextRequest::Drain) => break,
            Err(e) => (Proxied::from_error(&e), false),
        };
        state.requests_total.inc();
        let headers: Vec<(&str, String)> = proxied
            .headers
            .iter()
            .map(|(name, value)| (name.as_str(), value.clone()))
            .collect();
        let io = write_response(
            &mut writer,
            proxied.status,
            proxied.reason,
            &headers,
            &proxied.body,
            keep,
        );
        if !keep || io.is_err() {
            break;
        }
    }
    let drain_limit = config.max_body_bytes.saturating_add(1024 * 1024);
    let _ = writer.shutdown(Shutdown::Write);
    let _ = reader
        .get_ref()
        .get_ref()
        .set_read_timeout(Some(DRAIN_TIMEOUT));
    crate::http::drain(reader.get_mut(), drain_limit, DRAIN_TIMEOUT);
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// A response about to be written downstream: either a shard's answer
/// (hop-by-hop headers stripped; the body byte-identical) or one the
/// router built itself (folds, placement errors).
struct Proxied {
    status: u16,
    reason: &'static str,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Proxied {
    fn forwarded(status: u16, headers: Headers, body: Vec<u8>) -> Proxied {
        let headers = headers
            .into_iter()
            .filter(|(name, _)| name != "content-length" && name != "connection")
            .collect();
        Proxied {
            status,
            reason: reason_for(status),
            headers,
            body,
        }
    }

    fn ok(content_type: &str, body: Vec<u8>) -> Proxied {
        Proxied {
            status: 200,
            reason: "OK",
            headers: vec![("content-type".to_owned(), content_type.to_owned())],
            body,
        }
    }

    fn json(doc: &Json) -> Proxied {
        let mut body = String::new();
        doc.write(&mut body);
        body.push('\n');
        Proxied::ok("application/json", body.into_bytes())
    }

    fn from_error(error: &ServiceError) -> Proxied {
        let (status, reason) = error.status();
        let mut headers = vec![("content-type".to_owned(), "text/plain".to_owned())];
        if let ServiceError::MethodNotAllowed(allow) = error {
            headers.push(("allow".to_owned(), (*allow).to_owned()));
        }
        Proxied {
            status,
            reason,
            headers,
            body: format!("{error}\n").into_bytes(),
        }
    }
}

/// The canonical reason phrase for a forwarded status (the shard's own
/// phrase is not on the parsed-header path; bodies, not phrases, carry
/// the byte-identity guarantee).
fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

/// Re-encodes a parsed head back into a request target. The head
/// stores *decoded* path segments and query pairs, so each component
/// is percent-encoded again before going on the wire.
fn forward_target(head: &RequestHead) -> String {
    let mut target: String = head
        .path
        .split('/')
        .map(percent_encode)
        .collect::<Vec<_>>()
        .join("/");
    if target.is_empty() {
        target.push('/');
    }
    for (i, (name, value)) in head.query.iter().enumerate() {
        target.push(if i == 0 { '?' } else { '&' });
        target.push_str(&percent_encode(name));
        target.push('=');
        target.push_str(&percent_encode(value));
    }
    target
}

/// Percent-encodes everything outside the RFC 3986 unreserved set.
fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Routes one buffered request to its answer.
fn dispatch(head: &RequestHead, body: &[u8], state: &RouterState) -> Proxied {
    let target = forward_target(head);
    match (head.method.as_str(), head.path.as_str()) {
        ("GET", "/healthz") => health(state),
        ("GET", "/metrics") => fold_metrics(state),
        ("GET", "/v1/stats") => fold_stats(state, &target),
        ("GET", "/v1/route") => route_debug(head, state),
        ("GET", "/v1/datasets" | "/v1/jobs") => merge_lists(state, &target),
        ("POST", "/v1/anonymize" | "/v1/datasets") => {
            let key = match head.query_param("dataset") {
                Some(digest) => digest.to_owned(),
                None => body_key(head, body),
            };
            keyed(state, &key, head, body, &target)
        }
        ("POST", "/v1/jobs") => {
            // Jobs always reference a registered digest; a missing
            // parameter still forwards (deterministically) so the
            // shard's own 400 reaches the client byte-identical.
            let key = head.query_param("dataset").unwrap_or("").to_owned();
            keyed(state, &key, head, body, &target)
        }
        ("GET", path) if path.strip_prefix("/v1/datasets/").is_some() => {
            let digest = path.strip_prefix("/v1/datasets/").expect("guarded");
            keyed(state, digest, head, body, &target)
        }
        ("GET", path)
            if path.starts_with("/v1/jobs/")
                || path.starts_with("/v1/results/")
                || path.starts_with("/v1/traces/") =>
        {
            find_anywhere(state, head, &target)
        }
        // Everything else — the stateless endpoints (/v1/mechanisms,
        // /v1/evaluate), unknown paths and wrong methods — forwards to
        // any live shard so status and body match a single node.
        _ => any_shard(state, head, body, &target),
    }
}

/// The placement key for a body-carrying request without a `dataset`
/// parameter: the content digest of the parsed dataset (identical to
/// what the owning shard will compute), falling back to a digest of
/// the raw bytes when the body does not parse — the forward still has
/// to be deterministic so the shard's 400 is reproducible.
fn body_key(head: &RequestHead, body: &[u8]) -> String {
    if let Ok(format) = body_format(head) {
        let mut stream = DatasetStream::new(format);
        if stream.push_chunk(body).is_ok() {
            if let Ok(dataset) = stream.finish() {
                return dataset_digest(&dataset);
            }
        }
    }
    digest_hex(body)
}

/// The request's `content-type`, forwarded verbatim (the shard sniffs
/// the body format from it when no `format` parameter is present).
fn content_type(head: &RequestHead) -> &str {
    head.header("content-type").unwrap_or("text/csv")
}

/// Forwards to the single owning shard — no failover: a dead owner
/// 503s its own key range and nothing else.
fn keyed(state: &RouterState, key: &str, head: &RequestHead, body: &[u8], target: &str) -> Proxied {
    let Some(owner) = rendezvous_owner(&state.names, key) else {
        return Proxied::from_error(&ServiceError::Unavailable("no shards configured".into()));
    };
    let shard = &state.shards[owner];
    match shard.call(
        state.config.timeout,
        &head.method,
        target,
        content_type(head),
        body,
    ) {
        Ok((status, headers, body)) => Proxied::forwarded(status, headers, body),
        Err(e) => Proxied::from_error(&ServiceError::Unavailable(format!(
            "shard {} unreachable: {e}",
            shard.name
        ))),
    }
}

/// Forwards to the highest-ranked live shard (stateless routes, where
/// any shard answers identically): tries the rendezvous order for the
/// target until one responds.
fn any_shard(state: &RouterState, head: &RequestHead, body: &[u8], target: &str) -> Proxied {
    for index in rendezvous_rank(&state.names, target) {
        let shard = &state.shards[index];
        if let Ok((status, headers, body)) = shard.call(
            state.config.timeout,
            &head.method,
            target,
            content_type(head),
            body,
        ) {
            return Proxied::forwarded(status, headers, body);
        }
    }
    Proxied::from_error(&ServiceError::Unavailable("no shard reachable".into()))
}

/// Fans a GET out to every shard and answers with the first non-404
/// response — job ids, result keys and trace ids are content addresses
/// the router cannot invert to a dataset digest. All-404 forwards the
/// last 404 (byte-identical to a single node's); a 404 with an
/// unreachable shard in the mix is a 503, because the missing shard
/// may hold the answer.
fn find_anywhere(state: &RouterState, head: &RequestHead, target: &str) -> Proxied {
    let mut dead = 0usize;
    let mut last_miss: Option<Proxied> = None;
    for shard in &state.shards {
        match shard.call(state.config.timeout, &head.method, target, "text/csv", &[]) {
            Ok((404, headers, body)) => last_miss = Some(Proxied::forwarded(404, headers, body)),
            Ok((status, headers, body)) => return Proxied::forwarded(status, headers, body),
            Err(_) => dead += 1,
        }
    }
    if dead > 0 {
        return Proxied::from_error(&ServiceError::Unavailable(format!(
            "{dead} shard(s) unreachable while resolving {target}"
        )));
    }
    last_miss.unwrap_or_else(|| Proxied::from_error(&ServiceError::NotFound(head.path.clone())))
}

/// `GET /healthz` — liveness of the router itself (always `200`);
/// `ready` only when every shard answered `ready`, `degraded`
/// otherwise, mirroring the single-node body contract.
fn health(state: &RouterState) -> Proxied {
    let all_ready = state.shards.iter().all(|shard| {
        matches!(
            shard.call(state.config.timeout, "GET", "/healthz", "text/csv", &[]),
            Ok((200, _, body)) if body == b"ready\n"
        )
    });
    let body = if all_ready { "ready\n" } else { "degraded\n" };
    Proxied::ok("text/plain", body.as_bytes().to_vec())
}

/// `GET /v1/route?key=…` — the placement debug endpoint: which shard
/// owns a key, and the full failover rank. The shard-smoke harness
/// uses it to learn each digest's owner before killing a shard.
fn route_debug(head: &RequestHead, state: &RouterState) -> Proxied {
    let Some(key) = head.query_param("key") else {
        return Proxied::from_error(&ServiceError::BadRequest(
            "missing required parameter `key`".into(),
        ));
    };
    let Some(owner) = rendezvous_owner(&state.names, key) else {
        return Proxied::from_error(&ServiceError::Unavailable("no shards configured".into()));
    };
    let rank: Vec<Json> = rendezvous_rank(&state.names, key)
        .into_iter()
        .map(|i| Json::Str(state.names[i].clone()))
        .collect();
    Proxied::json(&Json::Obj(vec![
        ("key".to_owned(), Json::Str(key.to_owned())),
        ("shard".to_owned(), Json::Str(state.names[owner].clone())),
        ("rank".to_owned(), Json::Arr(rank)),
    ]))
}

/// `GET /metrics` — scrapes every reachable shard, folds the
/// expositions exactly (counters and gauges sum, histogram buckets
/// add) and merges the router's own registry in, so one scrape sees
/// cluster totals plus the `mobipriv_route_*` counters.
fn fold_metrics(state: &RouterState) -> Proxied {
    let mut scrapes: Vec<Scrape> = Vec::new();
    for shard in &state.shards {
        if let Ok((200, _, body)) =
            shard.call(state.config.timeout, "GET", "/metrics", "text/csv", &[])
        {
            if let Some(scrape) = std::str::from_utf8(&body)
                .ok()
                .and_then(|text| scrape::parse(text).ok())
            {
                scrapes.push(scrape);
            }
        }
    }
    let refs: Vec<&Scrape> = scrapes.iter().collect();
    let folded = Scrape::fold(&refs);
    let text = render_merged(&[&state.registry, &folded]);
    Proxied::ok("text/plain; version=0.0.4", text.into_bytes())
}

/// `GET /v1/stats` — fans out and folds the JSON documents: numbers
/// sum, arrays concatenate, objects merge recursively, strings keep
/// the first shard's value.
fn fold_stats(state: &RouterState, target: &str) -> Proxied {
    let mut folded: Option<Json> = None;
    for shard in &state.shards {
        if let Ok((200, _, body)) = shard.call(state.config.timeout, "GET", target, "text/csv", &[])
        {
            if let Some(doc) = std::str::from_utf8(&body)
                .ok()
                .and_then(|text| Json::parse(text).ok())
            {
                match folded.as_mut() {
                    Some(acc) => fold_json(acc, &doc),
                    None => folded = Some(doc),
                }
            }
        }
    }
    match folded {
        Some(doc) => Proxied::json(&doc),
        None => Proxied::from_error(&ServiceError::Unavailable("no shard reachable".into())),
    }
}

/// `GET /v1/datasets` / `GET /v1/jobs` — fans out and concatenates the
/// per-shard listings. Unreachable shards contribute nothing (their
/// keyed routes are already 503ing); the listing stays available.
fn merge_lists(state: &RouterState, target: &str) -> Proxied {
    let mut merged: Vec<Json> = Vec::new();
    let mut reached = 0usize;
    for shard in &state.shards {
        if let Ok((200, _, body)) = shard.call(state.config.timeout, "GET", target, "text/csv", &[])
        {
            reached += 1;
            if let Some(Json::Arr(items)) = std::str::from_utf8(&body)
                .ok()
                .and_then(|text| Json::parse(text).ok())
            {
                merged.extend(items);
            }
        }
    }
    if reached == 0 {
        return Proxied::from_error(&ServiceError::Unavailable("no shard reachable".into()));
    }
    Proxied::json(&Json::Arr(merged))
}

/// Recursive JSON fold for `/v1/stats`: numeric leaves sum, arrays
/// concatenate, objects merge key-wise; anything else keeps the first
/// value seen.
fn fold_json(acc: &mut Json, add: &Json) {
    match (acc, add) {
        (Json::Obj(a), Json::Obj(b)) => {
            for (key, value) in b {
                match a.iter_mut().find(|(k, _)| k == key) {
                    Some((_, slot)) => fold_json(slot, value),
                    None => a.push((key.clone(), value.clone())),
                }
            }
        }
        (Json::Arr(a), Json::Arr(b)) => a.extend(b.iter().cloned()),
        (Json::UInt(a), Json::UInt(b)) => *a = a.saturating_add(*b),
        (Json::Num(a), Json::Num(b)) => *a += b,
        (acc @ Json::UInt(_), Json::Num(b)) => {
            if let Json::UInt(a) = *acc {
                *acc = Json::Num(a as f64 + b);
            }
        }
        (Json::Num(a), Json::UInt(b)) => *a += *b as f64,
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:9{i:03}")).collect()
    }

    #[test]
    fn owner_is_stable_under_reordering() {
        let mut shards = shard_names(5);
        let owner =
            |shards: &[String], key: &str| shards[rendezvous_owner(shards, key).unwrap()].clone();
        let keys: Vec<String> = (0..50).map(|i| format!("key-{i}")).collect();
        let baseline: Vec<String> = keys.iter().map(|k| owner(&shards, k)).collect();
        shards.reverse();
        let reversed: Vec<String> = keys.iter().map(|k| owner(&shards, k)).collect();
        assert_eq!(baseline, reversed);
        shards.swap(0, 2);
        let swapped: Vec<String> = keys.iter().map(|k| owner(&shards, k)).collect();
        assert_eq!(baseline, swapped);
    }

    #[test]
    fn removal_only_remaps_the_lost_shards_keys() {
        let shards = shard_names(4);
        let keys: Vec<String> = (0..200)
            .map(|i| format!("{:016x}", mix(i as u64)))
            .collect();
        let before: Vec<usize> = keys
            .iter()
            .map(|k| rendezvous_owner(&shards, k).unwrap())
            .collect();
        let survivors: Vec<String> = shards[..3].to_vec();
        for (key, &owner_before) in keys.iter().zip(&before) {
            let after = rendezvous_owner(&survivors, key).unwrap();
            if owner_before < 3 {
                assert_eq!(after, owner_before, "surviving shard's key {key} moved");
            }
        }
    }

    #[test]
    fn assignment_is_roughly_balanced() {
        let shards = shard_names(4);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            let key = format!("{:016x}", mix(i));
            counts[rendezvous_owner(&shards, &key).unwrap()] += 1;
        }
        for &count in &counts {
            assert!(
                (600..=1400).contains(&count),
                "skewed placement: {counts:?}"
            );
        }
    }

    #[test]
    fn rank_starts_at_owner_and_permutes_all_shards() {
        let shards = shard_names(6);
        let rank = rendezvous_rank(&shards, "some-digest");
        assert_eq!(rank[0], rendezvous_owner(&shards, "some-digest").unwrap());
        let mut sorted = rank.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn forward_target_round_trips_query_encoding() {
        let head = RequestHead {
            method: "POST".to_owned(),
            path: "/v1/anonymize".to_owned(),
            query: vec![
                ("mechanism".to_owned(), "promesse".to_owned()),
                ("cell".to_owned(), "a b,c".to_owned()),
            ],
            headers: vec![],
            http11: true,
        };
        assert_eq!(
            forward_target(&head),
            "/v1/anonymize?mechanism=promesse&cell=a%20b%2Cc"
        );
    }

    #[test]
    fn fold_json_sums_numbers_and_concatenates_arrays() {
        let mut acc = Json::parse(r#"{"count":3,"ratio":0.5,"items":[1],"name":"a"}"#).unwrap();
        let add =
            Json::parse(r#"{"count":4,"ratio":0.25,"items":[2],"name":"b","extra":1}"#).unwrap();
        fold_json(&mut acc, &add);
        assert_eq!(acc.get("count").and_then(Json::as_u64), Some(7));
        assert_eq!(acc.get("ratio").and_then(Json::as_f64), Some(0.75));
        assert_eq!(
            acc.get("items").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(acc.get("name").and_then(Json::as_str), Some("a"));
        assert_eq!(acc.get("extra").and_then(Json::as_u64), Some(1));
    }
}
