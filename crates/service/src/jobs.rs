//! The async job engine behind `POST /v1/jobs` / `GET /v1/jobs/:id`.
//!
//! A job is a *content-addressed* unit of work: its id is the 16-hex
//! result key derived from the canonical cache-key string, so two
//! submissions describing the same `(dataset digest, mechanism,
//! canonical params, seed)` are **the same job** — the board coalesces
//! them onto one entry, and the executor funnels the computation
//! through the single-flight result cache it shares with the
//! synchronous `POST /v1/anonymize` path. Polling `GET /v1/jobs/:id`
//! reports `queued → running → done` (or `failed`) with a coarse
//! progress fraction; the finished body is fetched from
//! `GET /v1/results/:id`.
//!
//! Jobs hold an `Arc` to their dataset from submission time, so
//! registry eviction never invalidates queued work. Finished job
//! records are themselves bounded (oldest finished records are dropped
//! past a cap) — the *results* live in the cache, the job record is
//! only the status page.
//!
//! # Retry & quarantine
//!
//! The executor classifies failures with
//! [`ServiceError::is_transient`]: transient ones (queue pressure,
//! panics, injected faults) are retried up to
//! [`ResilienceConfig::max_attempts`](crate::ResilienceConfig) with the
//! deterministic exponential backoff of [`backoff_ms`]; permanent ones
//! (bad parameters, exhausted deadlines) fail on the first attempt. A
//! job that exhausts its attempts is **quarantined** as `failed`, with
//! the full attempt history — per-attempt error, classification and
//! backoff — on `GET /v1/jobs/:id`. Resubmitting the same spec starts a
//! fresh attempt cycle.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use mobipriv_eval::Json;
use mobipriv_obs::logging::{self, FieldValue};
use mobipriv_obs::trace::{next_trace_id, SpanRecorder};

use crate::cache::{result_key, CacheOutcome};
use crate::chaos::{fnv1a, mix64};
use crate::compute;
use crate::datasets::DatasetEntry;
use crate::registry::{resolve_mechanism, Params};
use crate::state::AppState;
use crate::ServiceError;

/// Finished job records kept before the oldest are dropped.
const MAX_FINISHED_JOBS: usize = 4096;

/// What a job computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Anonymize the dataset; result is canonical CSV.
    Anonymize,
    /// Utility evaluation of a mechanism on the dataset; result is JSON.
    Evaluate,
}

impl JobKind {
    /// The `kind=` wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Anonymize => "anonymize",
            JobKind::Evaluate => "evaluate",
        }
    }
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for an executor.
    Queued,
    /// An executor is computing (or joining an in-flight computation).
    Running,
    /// The result is in the cache under the job id.
    Done,
    /// The computation failed; `error` has the message. Resubmitting
    /// the same spec retries.
    Failed,
}

impl JobStatus {
    /// The wire name reported by the status endpoint.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// The immutable description of what a job runs.
#[derive(Debug)]
pub struct JobSpec {
    /// What to compute.
    pub kind: JobKind,
    /// The registered dataset (pinned from submission).
    pub dataset: Arc<DatasetEntry>,
    /// Decoded query pairs, kept to rebuild the mechanism executor-side.
    pub query: Vec<(String, String)>,
    /// Canonical mechanism parameter string.
    pub mechanism_canonical: String,
    /// Request seed.
    pub seed: u64,
    /// Whether the anonymize result carries utility-report headers.
    pub report: bool,
    /// The full canonical cache-key string.
    pub canonical: String,
    /// Client-requested compute budget per attempt (`timeout_ms` on
    /// submission), clamped by the server's configured ceiling when the
    /// executor runs. `None` = the configured default budget.
    pub timeout_ms: Option<u64>,
}

/// One executor attempt that did not produce a result — the quarantine
/// record `GET /v1/jobs/:id` exposes under `attempts`.
#[derive(Debug, Clone)]
struct Attempt {
    error: String,
    transient: bool,
    /// Backoff slept *after* this attempt, `None` on the final one.
    backoff_ms: Option<u64>,
}

#[derive(Debug, Clone)]
struct JobState {
    status: JobStatus,
    progress: f64,
    error: Option<String>,
    wall_ms: f64,
    cache: Option<CacheOutcome>,
    /// Trace id of the executor run (set when the job starts running);
    /// its span timeline is served by `GET /v1/traces/:id`.
    trace: Option<String>,
    /// Failed attempts so far (live during retries, final after
    /// quarantine).
    attempts: Vec<Attempt>,
}

/// One submitted job: spec + mutable status.
#[derive(Debug)]
pub struct Job {
    /// Content-addressed id — equal to the result key.
    pub id: String,
    /// What this job computes.
    pub spec: JobSpec,
    state: Mutex<JobState>,
}

impl Job {
    fn new(spec: JobSpec) -> Job {
        Job {
            id: result_key(&spec.canonical),
            spec,
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                progress: 0.0,
                error: None,
                wall_ms: 0.0,
                cache: None,
                trace: None,
                attempts: Vec::new(),
            }),
        }
    }

    fn state(&self) -> JobState {
        self.state.lock().expect("job mutex poisoned").clone()
    }

    /// Current lifecycle state.
    pub fn status(&self) -> JobStatus {
        self.state().status
    }

    fn set_progress(&self, progress: f64) {
        let mut state = self.state.lock().expect("job mutex poisoned");
        state.progress = progress.clamp(state.progress, 1.0);
    }

    /// The status document `GET /v1/jobs/:id` serves.
    pub fn to_json(&self) -> Json {
        let state = self.state();
        let mut members = vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("kind".into(), Json::Str(self.spec.kind.name().into())),
            ("status".into(), Json::Str(state.status.name().into())),
            ("progress".into(), Json::Num(state.progress)),
            (
                "dataset".into(),
                Json::Str(self.spec.dataset.digest.clone()),
            ),
            (
                "mechanism".into(),
                Json::Str(self.spec.mechanism_canonical.clone()),
            ),
            ("seed".into(), Json::UInt(self.spec.seed)),
            (
                "result".into(),
                Json::Str(format!("/v1/results/{}", self.id)),
            ),
        ];
        if state.status == JobStatus::Done || state.status == JobStatus::Failed {
            members.push(("wall_ms".into(), Json::Num(state.wall_ms)));
        }
        if let Some(outcome) = state.cache {
            members.push(("cache".into(), Json::Str(outcome.header_value().into())));
        }
        if let Some(trace) = state.trace {
            members.push(("trace".into(), Json::Str(trace)));
        }
        if let Some(error) = state.error {
            members.push(("error".into(), Json::Str(error)));
        }
        if !state.attempts.is_empty() {
            let attempts = state
                .attempts
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    let mut fields = vec![
                        ("attempt".into(), Json::UInt(i as u64 + 1)),
                        ("error".into(), Json::Str(a.error.clone())),
                        ("transient".into(), Json::Bool(a.transient)),
                    ];
                    if let Some(ms) = a.backoff_ms {
                        fields.push(("backoff_ms".into(), Json::UInt(ms)));
                    }
                    Json::Obj(fields)
                })
                .collect();
            members.push(("attempts".into(), Json::Arr(attempts)));
        }
        Json::Obj(members)
    }
}

/// The deterministic backoff slept after failed attempt `attempt`
/// (0-based) of the job addressed by `key`: `base · 2^attempt` plus a
/// jitter drawn from FNV/SplitMix over `(key, attempt)` — never from
/// wall-clock randomness — capped at `cap_ms`. For a fixed key the
/// schedule is reproducible and monotone non-decreasing; jitter keeps
/// *different* keys from retrying in lockstep.
pub fn backoff_ms(key: &str, attempt: u32, base_ms: u64, cap_ms: u64) -> u64 {
    let base = base_ms.max(1);
    let exponential = base.saturating_mul(1u64 << attempt.min(20));
    // Jitter strictly below `base`: each doubling step grows by at
    // least `base`, so jitter can never break monotonicity.
    let jitter = mix64(fnv1a(key.as_bytes()) ^ u64::from(attempt)) % base;
    exponential.saturating_add(jitter).min(cap_ms.max(base))
}

/// What [`JobBoard::submit`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submitted {
    /// A new job record was enqueued.
    Enqueued,
    /// An equivalent job already existed (queued, running or done);
    /// the caller was coalesced onto it.
    Coalesced,
    /// The result was already in the cache — the job record was born
    /// `done` without touching the queue.
    Cached,
}

struct BoardInner {
    jobs: HashMap<String, Arc<Job>>,
    finished: VecDeque<String>,
}

/// The job registry + submission queue.
pub struct JobBoard {
    inner: Mutex<BoardInner>,
    sender: Mutex<Option<SyncSender<Arc<Job>>>>,
    /// Persistence hook (set once at boot when the server has a
    /// `--data-dir`): accepted submissions are journaled so a crashed
    /// node can report which jobs were in flight.
    store: OnceLock<Arc<crate::store::Store>>,
}

impl JobBoard {
    /// Creates the board and the bounded submission queue; the receiver
    /// goes to the executor threads.
    pub fn new(queue_depth: usize) -> (JobBoard, Receiver<Arc<Job>>) {
        let (sender, receiver) = std::sync::mpsc::sync_channel(queue_depth.max(1));
        (
            JobBoard {
                inner: Mutex::new(BoardInner {
                    jobs: HashMap::new(),
                    finished: VecDeque::new(),
                }),
                sender: Mutex::new(Some(sender)),
                store: OnceLock::new(),
            },
            receiver,
        )
    }

    /// Attaches the persistence layer (once, at boot).
    pub(crate) fn attach_store(&self, store: Arc<crate::store::Store>) {
        let _ = self.store.set(store);
    }

    /// Submits a job, coalescing onto an existing equivalent one.
    /// A previously failed job with the same id is retried, and — when
    /// the caller observed the result missing from the cache
    /// (`result_evicted`) — so is a `done` record whose body was
    /// LRU-evicted; coalescing onto it instead would 200 `done` while
    /// `GET /v1/results` keeps 404ing, a permanent livelock for the key.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Unavailable`] when the job queue is full or the
    /// server is shutting down.
    pub fn submit(
        &self,
        spec: JobSpec,
        result_evicted: bool,
    ) -> Result<(Arc<Job>, Submitted), ServiceError> {
        let mut inner = self.inner.lock().expect("job board mutex poisoned");
        let id = result_key(&spec.canonical);
        if let Some(existing) = inner.jobs.get(&id) {
            let replace = match existing.status() {
                JobStatus::Failed => true,
                JobStatus::Done => result_evicted,
                JobStatus::Queued | JobStatus::Running => false,
            };
            if !replace {
                return Ok((Arc::clone(existing), Submitted::Coalesced));
            }
        }
        let job = Arc::new(Job::new(spec));
        self.enqueue(Arc::clone(&job))?;
        inner.jobs.insert(id, Arc::clone(&job));
        // Bound the record map: drop the oldest finished records past
        // the cap (their results stay addressable in the cache).
        while inner.jobs.len() > MAX_FINISHED_JOBS {
            let Some(old) = inner.finished.pop_front() else {
                break; // everything live is queued/running; keep them all
            };
            if inner
                .jobs
                .get(&old)
                .is_some_and(|j| matches!(j.status(), JobStatus::Done | JobStatus::Failed))
            {
                inner.jobs.remove(&old);
            }
        }
        drop(inner);
        // Journal the accepted submission off the board lock — status
        // polls must not stall behind the append's fsync. An executor
        // may complete the job (journaling `JobCompleted`) before this
        // append lands; recovery folds completions as a set, so the
        // reorder never reads as an in-flight job.
        if let Some(store) = self.store.get() {
            if let Err(e) = store.job_submitted(&job.id, &job.spec.canonical) {
                logging::warn(
                    "service::jobs",
                    None,
                    "submission not journaled",
                    &[
                        ("id", FieldValue::Str(&job.id)),
                        ("error", FieldValue::Str(&e.to_string())),
                    ],
                );
            }
        }
        Ok((job, Submitted::Enqueued))
    }

    fn enqueue(&self, job: Arc<Job>) -> Result<(), ServiceError> {
        let sender = self.sender.lock().expect("job sender mutex poisoned");
        let Some(sender) = sender.as_ref() else {
            return Err(ServiceError::Unavailable("server is shutting down".into()));
        };
        sender.try_send(job).map_err(|e| match e {
            TrySendError::Full(_) => ServiceError::Unavailable("job queue is full".into()),
            TrySendError::Disconnected(_) => {
                ServiceError::Unavailable("server is shutting down".into())
            }
        })
    }

    /// Records a job whose result is already cached: the record is born
    /// `done` (cache hit) and never touches the queue. If an
    /// equivalent live job exists the caller is coalesced onto it
    /// instead.
    pub fn insert_done(&self, spec: JobSpec) -> (Arc<Job>, Submitted) {
        let mut inner = self.inner.lock().expect("job board mutex poisoned");
        let id = result_key(&spec.canonical);
        if let Some(existing) = inner.jobs.get(&id) {
            if existing.status() != JobStatus::Failed {
                return (Arc::clone(existing), Submitted::Coalesced);
            }
        }
        let job = Arc::new(Job::new(spec));
        {
            let mut state = job.state.lock().expect("job mutex poisoned");
            state.status = JobStatus::Done;
            state.progress = 1.0;
            state.cache = Some(CacheOutcome::Hit);
        }
        inner.jobs.insert(id.clone(), Arc::clone(&job));
        inner.finished.push_back(id);
        (job, Submitted::Cached)
    }

    /// Looks a job up by id.
    pub fn get(&self, id: &str) -> Option<Arc<Job>> {
        let inner = self.inner.lock().expect("job board mutex poisoned");
        inner.jobs.get(id).map(Arc::clone)
    }

    /// Snapshot of every job record.
    pub fn list(&self) -> Vec<Arc<Job>> {
        let inner = self.inner.lock().expect("job board mutex poisoned");
        let mut jobs: Vec<Arc<Job>> = inner.jobs.values().map(Arc::clone).collect();
        jobs.sort_by(|a, b| a.id.cmp(&b.id));
        jobs
    }

    /// Counts by status: `(queued, running, done, failed)`.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let inner = self.inner.lock().expect("job board mutex poisoned");
        let mut counts = (0, 0, 0, 0);
        for job in inner.jobs.values() {
            match job.status() {
                JobStatus::Queued => counts.0 += 1,
                JobStatus::Running => counts.1 += 1,
                JobStatus::Done => counts.2 += 1,
                JobStatus::Failed => counts.3 += 1,
            }
        }
        counts
    }

    /// Closes the submission queue: executors drain what is queued and
    /// exit; new submissions answer 503.
    pub fn close(&self) {
        self.sender
            .lock()
            .expect("job sender mutex poisoned")
            .take();
    }

    fn record_finished(&self, id: &str) {
        let mut inner = self.inner.lock().expect("job board mutex poisoned");
        inner.finished.push_back(id.to_owned());
    }
}

/// One attempt: joins or leads the single-flight for the job's key,
/// computing (when leading) behind the failure-domain gate of
/// [`AppState::guarded_compute`].
fn cache_attempt(
    job: &Arc<Job>,
    state: &AppState,
    budget: Duration,
    progress: &dyn Fn(f64),
    spans: &SpanRecorder,
) -> Result<(Arc<crate::cache::CachedResult>, CacheOutcome), ServiceError> {
    let spec = &job.spec;
    state.results.get_or_compute(&spec.canonical, || {
        state.guarded_compute(&spec.canonical, budget, |cancel| {
            // Rebuilding the mechanism from the stored query keeps the
            // job spec `Send` without demanding it of `dyn Mechanism`.
            let resolved = resolve_mechanism(Params(&spec.query))?;
            match spec.kind {
                JobKind::Anonymize => compute::anonymize_result(
                    &spec.canonical,
                    &spec.dataset.dataset,
                    resolved.mechanism.as_ref(),
                    &resolved.canonical,
                    spec.seed,
                    spec.report,
                    mobipriv_model::WireFormat::Csv,
                    &state.engine,
                    cancel,
                    progress,
                    spans,
                ),
                JobKind::Evaluate => compute::evaluate_result(
                    &spec.canonical,
                    &spec.dataset.digest,
                    &spec.dataset.dataset,
                    resolved.mechanism.as_ref(),
                    &resolved.canonical,
                    spec.seed,
                    &state.engine,
                    cancel,
                    progress,
                    spans,
                ),
            }
        })
    })
}

/// Runs one job to completion on the shared state (cache + engine +
/// failure-domain gate). This is the executor-thread body; it never
/// panics outward (failures land in the job record). The executor
/// records its own span timeline under a fresh trace id, exposed
/// through the job document's `trace` field.
///
/// Each attempt funnels through the single-flight cache and
/// [`AppState::guarded_compute`] (breaker admission, chaos, a fresh
/// per-attempt [`CancelToken`](mobipriv_core::CancelToken)); transient
/// failures back off deterministically ([`backoff_ms`]) and retry until
/// `max_attempts`, then the job is quarantined as `failed` with its
/// attempt history.
pub(crate) fn run_job(job: &Arc<Job>, state: &AppState) {
    let started = Instant::now();
    let spans = SpanRecorder::new(next_trace_id());
    {
        let mut job_state = job.state.lock().expect("job mutex poisoned");
        job_state.status = JobStatus::Running;
        job_state.trace = Some(spans.id().to_owned());
    }
    let spec = &job.spec;
    let progress = |p: f64| job.set_progress(p);
    let budget = state.resilience.clamp_budget(spec.timeout_ms);
    let max_attempts = state.resilience.max_attempts.max(1);
    let lookup_start = Instant::now();
    let outcome = loop {
        let attempt = cache_attempt(job, state, budget, &progress, &spans);
        let e = match attempt {
            Ok(ok) => break Ok(ok),
            Err(e) => e,
        };
        let attempt_no = {
            let job_state = job.state.lock().expect("job mutex poisoned");
            job_state.attempts.len() as u32 + 1
        };
        let retryable = e.is_transient() && attempt_no < max_attempts;
        let backoff = retryable.then(|| {
            backoff_ms(
                &job.id,
                attempt_no - 1,
                state.resilience.backoff_base_ms,
                state.resilience.backoff_cap_ms,
            )
        });
        {
            // Recorded before sleeping so a poll mid-retry already sees
            // the history.
            let mut job_state = job.state.lock().expect("job mutex poisoned");
            job_state.attempts.push(Attempt {
                error: e.to_string(),
                transient: e.is_transient(),
                backoff_ms: backoff,
            });
        }
        match backoff {
            Some(ms) => {
                state.metrics.retries_total.inc();
                logging::debug(
                    "service::jobs",
                    Some(spans.id()),
                    "transient job failure; retrying",
                    &[
                        ("id", FieldValue::Str(&job.id)),
                        ("attempt", FieldValue::U64(u64::from(attempt_no))),
                        ("backoff_ms", FieldValue::U64(ms)),
                        ("error", FieldValue::Str(&e.to_string())),
                    ],
                );
                std::thread::sleep(Duration::from_millis(ms));
            }
            None => break Err(e),
        }
    };
    spans.record("cache_lookup", lookup_start);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let mut job_state = job.state.lock().expect("job mutex poisoned");
    job_state.wall_ms = wall_ms;
    let error = match outcome {
        Ok((_, cache_outcome)) => {
            job_state.status = JobStatus::Done;
            job_state.progress = 1.0;
            job_state.cache = Some(cache_outcome);
            None
        }
        Err(e) => {
            job_state.status = JobStatus::Failed;
            job_state.error = Some(e.to_string());
            Some(e.to_string())
        }
    };
    drop(job_state);
    state.jobs.record_finished(&job.id);
    state.metrics.record_spans(&spans);
    state.traces.store(&spans);
    match &error {
        None => state.metrics.jobs_done_total.inc(),
        Some(_) => state.metrics.jobs_failed_total.inc(),
    }
    match &error {
        None => logging::debug(
            "service::jobs",
            Some(spans.id()),
            "job done",
            &[
                ("id", FieldValue::Str(&job.id)),
                ("kind", FieldValue::Str(spec.kind.name())),
                ("wall_ms", FieldValue::F64(wall_ms)),
            ],
        ),
        Some(message) => logging::warn(
            "service::jobs",
            Some(spans.id()),
            "job failed",
            &[
                ("id", FieldValue::Str(&job.id)),
                ("kind", FieldValue::Str(spec.kind.name())),
                ("wall_ms", FieldValue::F64(wall_ms)),
                ("error", FieldValue::Str(message)),
            ],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::ResilienceConfig;
    use crate::chaos::ChaosConfig;
    use mobipriv_core::Engine;
    use mobipriv_geo::LatLng;
    use mobipriv_model::{Dataset, Fix, Timestamp, Trace, UserId};

    fn test_state(
        resilience: ResilienceConfig,
        chaos: Option<ChaosConfig>,
    ) -> (Arc<AppState>, Receiver<Arc<Job>>) {
        AppState::new(
            Engine::sequential(),
            1 << 20,
            1 << 20,
            8,
            None,
            resilience,
            chaos,
        )
        .unwrap()
    }

    fn entry() -> Arc<DatasetEntry> {
        let dataset = Dataset::from_traces(vec![Trace::new(
            UserId::new(1),
            vec![
                Fix::new(LatLng::new(45.76, 4.84).unwrap(), Timestamp::new(0)),
                Fix::new(LatLng::new(45.77, 4.85).unwrap(), Timestamp::new(60)),
            ],
        )
        .unwrap()]);
        Arc::new(DatasetEntry {
            digest: "abcdef0123456789".into(),
            traces: dataset.len(),
            fixes: dataset.total_fixes() as u64,
            bytes: 0,
            dataset: Arc::new(dataset),
        })
    }

    fn spec(seed: u64) -> JobSpec {
        let query = vec![("mechanism".to_owned(), "raw".to_owned())];
        JobSpec {
            kind: JobKind::Anonymize,
            dataset: entry(),
            query,
            mechanism_canonical: "raw".into(),
            seed,
            report: false,
            canonical: compute::canonical_key(
                "anonymize",
                "abcdef0123456789",
                "raw",
                seed,
                false,
                mobipriv_model::WireFormat::Csv,
            ),
            timeout_ms: None,
        }
    }

    #[test]
    fn identical_specs_coalesce_and_run_once() {
        let (state, receiver) = test_state(ResilienceConfig::default(), None);
        let (a, first) = state.jobs.submit(spec(1), false).unwrap();
        let (b, second) = state.jobs.submit(spec(1), false).unwrap();
        assert_eq!(first, Submitted::Enqueued);
        assert_eq!(second, Submitted::Coalesced);
        assert!(Arc::ptr_eq(&a, &b));
        let (c, third) = state.jobs.submit(spec(2), false).unwrap();
        assert_eq!(third, Submitted::Enqueued);
        assert_ne!(a.id, c.id);
        // Exactly the two distinct jobs sit in the queue.
        for _ in 0..2 {
            let job = receiver.try_recv().expect("queued job");
            run_job(&job, &state);
            assert_eq!(job.status(), JobStatus::Done);
        }
        assert!(receiver.try_recv().is_err(), "no third enqueue");
        assert_eq!(state.results.computations(), 2);
        // Both results are addressable under their job ids.
        assert!(state.results.lookup(&a.id).is_some());
        assert!(state.results.lookup(&c.id).is_some());
    }

    #[test]
    fn failed_jobs_report_and_can_retry() {
        let (state, receiver) = test_state(ResilienceConfig::default(), None);
        let mut bad = spec(3);
        bad.query = vec![("mechanism".to_owned(), "warp-drive".to_owned())];
        let (job, _) = state.jobs.submit(bad, false).unwrap();
        run_job(&receiver.try_recv().unwrap(), &state);
        assert_eq!(job.status(), JobStatus::Failed);
        let mut text = String::new();
        job.to_json().write(&mut text);
        assert!(text.contains("\"status\":\"failed\""), "{text}");
        assert!(text.contains("unknown mechanism"), "{text}");
        // A permanent error fails on the first attempt — no retries.
        assert!(text.contains("\"transient\":false"), "{text}");
        assert!(!text.contains("backoff_ms"), "{text}");
        assert_eq!(state.metrics.retries_total.get(), 0);
        // Resubmission of a failed id enqueues a fresh attempt.
        let mut retry = spec(3);
        retry.query = vec![("mechanism".to_owned(), "warp-drive".to_owned())];
        let (_, submitted) = state.jobs.submit(retry, false).unwrap();
        assert_eq!(submitted, Submitted::Enqueued);
    }

    #[test]
    fn transient_failures_retry_then_quarantine_with_history() {
        let resilience = ResilienceConfig {
            max_attempts: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            // Keep the breaker out of this test's way.
            breaker_failure_threshold: 100,
            ..ResilienceConfig::default()
        };
        let chaos = ChaosConfig {
            error_p: 1.0,
            ..ChaosConfig::default()
        };
        let (state, receiver) = test_state(resilience, Some(chaos));
        let (job, _) = state.jobs.submit(spec(5), false).unwrap();
        run_job(&receiver.try_recv().unwrap(), &state);
        assert_eq!(job.status(), JobStatus::Failed, "quarantined");
        assert_eq!(state.metrics.retries_total.get(), 2, "two re-attempts");
        assert_eq!(state.metrics.jobs_failed_total.get(), 1);
        let mut text = String::new();
        job.to_json().write(&mut text);
        assert!(text.contains("\"attempts\":["), "{text}");
        assert!(text.contains("\"attempt\":3"), "{text}");
        assert!(text.contains("\"transient\":true"), "{text}");
        assert!(text.contains("\"backoff_ms\":"), "{text}");
        assert!(text.contains("chaos: injected transient fault"), "{text}");
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_monotone() {
        let schedule: Vec<u64> = (0..8).map(|a| backoff_ms("job-1", a, 25, 1_000)).collect();
        assert_eq!(
            schedule,
            (0..8)
                .map(|a| backoff_ms("job-1", a, 25, 1_000))
                .collect::<Vec<_>>(),
            "same key, same schedule"
        );
        for pair in schedule.windows(2) {
            assert!(pair[0] <= pair[1], "monotone: {schedule:?}");
        }
        assert!(schedule.iter().all(|&ms| ms <= 1_000), "capped");
        let schedule = |key| [0, 1, 2].map(|attempt| backoff_ms(key, attempt, 25, 1_000));
        assert_ne!(
            schedule("job-1"),
            schedule("job-2"),
            "distinct keys de-synchronize somewhere in the schedule"
        );
    }

    #[test]
    fn closed_board_rejects_submissions() {
        let (board, _receiver) = JobBoard::new(2);
        board.close();
        let err = board.submit(spec(9), false).unwrap_err();
        assert_eq!(err.status().0, 503);
    }
}
