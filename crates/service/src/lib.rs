//! Anonymization-as-a-service for the `mobipriv` toolkit.
//!
//! The ICDCS'15 paper frames Promesse and its baselines as mechanisms an
//! LBS operator runs before *publishing* mobility data; this crate is
//! that operator-facing surface: a long-running, std-only HTTP/1.1
//! server (`mobipriv-serve`) exposing the whole mechanism matrix, plus a
//! load-generator harness (`mobipriv-loadgen`) that replays a synthetic
//! city against it and reports throughput and latency percentiles.
//!
//! # Endpoints
//!
//! | route | description |
//! |---|---|
//! | `POST /v1/anonymize?mechanism=…&seed=…` | stream a CSV/NDJSON body through a mechanism, get CSV back |
//! | `GET /v1/mechanisms` | the mechanism catalogue with parameters and defaults |
//! | `GET /v1/evaluate?scenario=…&mechanism=…` | run the evaluation matrix (attacks + utility metrics) on synthetic workloads, get the JSON [`EvalReport`](mobipriv_eval::EvalReport) |
//! | `GET /healthz` | liveness probe |
//!
//! # Guarantees
//!
//! * **Determinism** — a response is a pure function of `(body,
//!   mechanism parameters, seed)`: the handler calls the same
//!   [`Engine`](mobipriv_core::Engine) as the batch tooling, whose
//!   output is schedule-independent. Replaying a request reproduces the
//!   release byte for byte.
//! * **Bounded memory** — bodies stream through
//!   [`DatasetStream`](mobipriv_model::DatasetStream) chunk by chunk;
//!   the server never buffers a raw body, holds at most one partial
//!   line of text per request, and enforces explicit head/body/line
//!   size limits.
//! * **Load shedding** — a bounded accept queue in front of a fixed
//!   worker pool: past the limit, clients get an immediate `503`
//!   instead of an ever-growing backlog.
//!
//! # Example
//!
//! ```
//! use mobipriv_service::{Server, ServerConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let server = Server::bind(ServerConfig::default())?; // 127.0.0.1:0
//! let handle = server.spawn()?;
//! let addr = handle.addr(); // POST http://{addr}/v1/anonymize?…
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rust_2018_idioms)]

mod error;
mod handlers;
pub mod http;
pub mod registry;
mod server;

pub use error::ServiceError;
pub use registry::{build_mechanism, MechanismInfo, MECHANISMS};
pub use server::{Server, ServerConfig, ServerHandle};
