//! Anonymization-as-a-service for the `mobipriv` toolkit.
//!
//! The ICDCS'15 paper frames Promesse and its baselines as mechanisms an
//! LBS operator runs before *publishing* mobility data; this crate is
//! that operator-facing surface: a long-running, std-only HTTP/1.1
//! server (`mobipriv-serve`) exposing the whole mechanism matrix, plus a
//! load-generator harness (`mobipriv-loadgen`) that replays a synthetic
//! city against it and reports throughput and latency percentiles.
//!
//! # Endpoints
//!
//! | route | description |
//! |---|---|
//! | `POST /v1/anonymize?mechanism=…&seed=…` | stream a CSV/NDJSON body (or reference a registered `dataset=…`) through a mechanism, get CSV back |
//! | `POST /v1/datasets` | register a dataset once under its content digest (publish-once/query-many ingestion) |
//! | `GET /v1/datasets[/:digest]` | the registry listing / one dataset's metadata |
//! | `POST /v1/jobs?dataset=…&mechanism=…` | submit an async anonymization or evaluation job against a registered digest |
//! | `GET /v1/jobs[/:id]` | job records / one job's `queued→running→done|failed` status with progress |
//! | `GET /v1/results/:key` | the finished bytes for a content address |
//! | `GET /v1/stats` | registry, cache and job counters (incl. the single-flight computation counter), with the full metric registry embedded under `"metrics"` |
//! | `GET /v1/mechanisms` | the mechanism catalogue with parameters and defaults |
//! | `GET /v1/evaluate?scenario=…&mechanism=…` | run the evaluation matrix (attacks + utility metrics) on synthetic workloads, get the JSON [`EvalReport`](mobipriv_eval::EvalReport) |
//! | `GET /metrics` | Prometheus text exposition: request/cache/job/queue counters and per-stage latency histograms ([`telemetry`]) |
//! | `GET /v1/traces/:id` | the span timeline behind an `x-mobipriv-trace` response header |
//! | `GET /healthz` | liveness probe — always HTTP 200, body `ready` or `degraded` (readiness is the body, see [`AppState::degraded`]) |
//! | `GET /v1/route?key=…` | (router mode only) placement debug: which shard owns a key, plus the full failover rank ([`router`]) |
//!
//! # Guarantees
//!
//! * **Determinism** — a response is a pure function of `(input
//!   content, canonical mechanism parameters, seed)`: the handler
//!   calls the same [`Engine`](mobipriv_core::Engine) as the batch
//!   tooling, whose output is schedule-independent. Replaying a
//!   request reproduces the release byte for byte.
//! * **Content-addressed results** — that same tuple is the result
//!   cache's key: repeated and concurrent identical requests coalesce
//!   into one computation (single-flight) and hits serve byte-identical
//!   bodies without recomputation (`x-mobipriv-cache: hit|miss`).
//! * **Bounded memory** — bodies stream through
//!   [`DatasetStream`](mobipriv_model::DatasetStream) chunk by chunk;
//!   the server never buffers a raw body, holds at most one partial
//!   line of text per request, and enforces explicit head/body/line
//!   size limits. The dataset registry and result cache are LRU-bounded
//!   byte budgets.
//! * **Load shedding** — a bounded accept queue in front of a fixed
//!   worker pool, and a bounded job queue in front of the executors:
//!   past either limit, clients get an immediate `503` instead of an
//!   ever-growing backlog.
//! * **Durability (opt-in)** — with `--data-dir`, registered datasets
//!   and finished results persist through a content-addressed blob
//!   store plus an append-only journal ([`store`]): a warm restart
//!   replays the journal, re-hashes every referenced blob (mismatches
//!   are quarantined, never served) and answers previously computed
//!   requests as byte-identical cache hits without recomputation.
//!   Without the flag the server is pure in-memory, as before.
//! * **Transport reuse & scale-out** — responses are
//!   `Content-Length`-framed so HTTP/1.1 connections persist across
//!   requests ([`http`]), and `--route shard,…` turns a node into a
//!   thin consistent-hash proxy over keep-alive upstream connections
//!   ([`router`]): responses stay byte-identical whether they travel
//!   one hop or two, and a dead shard degrades only its own key range.
//!
//! # Example
//!
//! ```
//! use mobipriv_service::{Server, ServerConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let server = Server::bind(ServerConfig::default())?; // 127.0.0.1:0
//! let handle = server.spawn()?;
//! let addr = handle.addr(); // POST http://{addr}/v1/anonymize?…
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rust_2018_idioms)]

pub mod breaker;
pub mod cache;
pub mod chaos;
pub mod client;
mod compute;
pub mod datasets;
mod error;
mod handlers;
pub mod http;
pub mod jobs;
pub mod registry;
pub mod router;
mod server;
mod state;
pub mod store;
pub mod telemetry;

pub use breaker::{Breaker, ResilienceConfig};
pub use cache::{result_key, CacheOutcome, ResultCache};
pub use chaos::{ChaosConfig, ChaosInjector};
pub use datasets::DatasetRegistry;
pub use error::ServiceError;
pub use jobs::{backoff_ms, JobBoard, JobKind, JobStatus};
pub use registry::{build_mechanism, resolve_mechanism, MechanismInfo, MECHANISMS};
pub use router::{rendezvous_owner, rendezvous_rank, Router, RouterConfig, RouterHandle};
pub use server::{Server, ServerConfig, ServerHandle};
pub use state::AppState;
pub use store::{Store, StoreStats};
