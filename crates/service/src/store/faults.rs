//! In-process fault injection for the persistence write path.
//!
//! Durability code is exactly the code that never runs in a happy-path
//! test, so the store routes every state-changing I/O through a
//! [`FaultInjector`] gate. Production servers carry
//! [`FaultInjector::none`] (a `None` — zero atomics touched); tests
//! build an armed injector, hand a clone to [`Store`](crate::store::Store)
//! and keep one themselves to read the op log back.
//!
//! Three failure shapes cover the crash matrix:
//!
//! * [`FaultMode::Fail`] — the Nth I/O returns an error and nothing is
//!   written; the process keeps running (transient failure: `EIO`,
//!   `ENOSPC`, …). Retrying the operation later must succeed.
//! * [`FaultMode::ShortWrite`] — the Nth I/O is a write that persists
//!   only half its bytes before erroring (a torn write). Abandoning the
//!   store afterwards leaves the same on-disk state as a power cut in
//!   the middle of that `write(2)`.
//! * [`FaultMode::Crash`] — the Nth I/O and **every I/O after it**
//!   fail (sticky). From the disk's point of view this is `kill -9` at
//!   that instant; the test then reopens the directory with a fresh
//!   store and asserts recovery.
//!
//! A counting (unarmed) injector records the labelled op sequence
//! without failing anything, so the fault-matrix test can first dry-run
//! a workload to learn how many I/Os it performs, then replay it once
//! per `(op index, mode)` pair.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How the armed injector fails the Nth I/O. See the module docs for
/// the crash-state each mode models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Error without side effects; later I/O succeeds.
    Fail,
    /// Writes persist half their bytes, then error; later I/O succeeds.
    ShortWrite,
    /// Error, and every subsequent I/O errors too (process death).
    Crash,
}

/// What a gated write is allowed to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteGate {
    /// Write everything.
    Full,
    /// Write the first half of the buffer, then report the injected
    /// error ([`FaultMode::ShortWrite`] fired on this op).
    Short,
}

#[derive(Debug)]
struct InjectorState {
    mode: FaultMode,
    /// Zero-based op index the fault fires at (`u64::MAX` = never,
    /// i.e. a counting injector).
    trigger: u64,
    ops: AtomicU64,
    crashed: AtomicBool,
    log: Mutex<Vec<&'static str>>,
}

/// The gate the store consults before each state-changing I/O.
/// Cheap to clone (shared state); `none()` is free of any state at all.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    state: Option<Arc<InjectorState>>,
}

fn injected(op: &str) -> io::Error {
    io::Error::other(format!("injected fault at {op}"))
}

impl FaultInjector {
    /// The production gate: every I/O proceeds, nothing is recorded.
    pub fn none() -> FaultInjector {
        FaultInjector { state: None }
    }

    /// A dry-run gate: records the op sequence, never fails.
    pub fn counting() -> FaultInjector {
        FaultInjector::with(FaultMode::Fail, u64::MAX)
    }

    /// A gate that fires `mode` at the zero-based `nth` gated I/O.
    pub fn armed(mode: FaultMode, nth: u64) -> FaultInjector {
        FaultInjector::with(mode, nth)
    }

    fn with(mode: FaultMode, trigger: u64) -> FaultInjector {
        FaultInjector {
            state: Some(Arc::new(InjectorState {
                mode,
                trigger,
                ops: AtomicU64::new(0),
                crashed: AtomicBool::new(false),
                log: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The labelled ops gated so far, in order.
    pub fn ops(&self) -> Vec<&'static str> {
        match &self.state {
            Some(s) => s.log.lock().expect("fault log poisoned").clone(),
            None => Vec::new(),
        }
    }

    /// Whether a [`FaultMode::Crash`] fault has fired (the store is
    /// "dead": all further gated I/O errors).
    pub fn crashed(&self) -> bool {
        self.state
            .as_ref()
            .is_some_and(|s| s.crashed.load(Ordering::SeqCst))
    }

    fn fire(&self, op: &'static str) -> io::Result<WriteGate> {
        let Some(s) = &self.state else {
            return Ok(WriteGate::Full);
        };
        if s.crashed.load(Ordering::SeqCst) {
            return Err(injected(op));
        }
        s.log.lock().expect("fault log poisoned").push(op);
        if s.ops.fetch_add(1, Ordering::SeqCst) == s.trigger {
            match s.mode {
                FaultMode::Fail => Err(injected(op)),
                FaultMode::ShortWrite => Ok(WriteGate::Short),
                FaultMode::Crash => {
                    s.crashed.store(true, Ordering::SeqCst);
                    Err(injected(op))
                }
            }
        } else {
            Ok(WriteGate::Full)
        }
    }

    /// Gates a non-write op (create/fsync/rename). [`FaultMode::ShortWrite`]
    /// degenerates to a plain failure here — there is no buffer to tear.
    pub fn check(&self, op: &'static str) -> io::Result<()> {
        match self.fire(op)? {
            WriteGate::Full => Ok(()),
            WriteGate::Short => Err(injected(op)),
        }
    }

    /// Gates a write op; the caller honours [`WriteGate::Short`] by
    /// persisting half the buffer and then returning the injected error.
    pub fn check_write(&self, op: &'static str) -> io::Result<WriteGate> {
        self.fire(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_transparent() {
        let gate = FaultInjector::none();
        for _ in 0..4 {
            gate.check("x").unwrap();
        }
        assert!(gate.ops().is_empty());
        assert!(!gate.crashed());
    }

    #[test]
    fn counting_logs_without_failing() {
        let gate = FaultInjector::counting();
        gate.check("a").unwrap();
        assert_eq!(gate.check_write("b").unwrap(), WriteGate::Full);
        assert_eq!(gate.ops(), vec!["a", "b"]);
    }

    #[test]
    fn fail_fires_once_then_clears() {
        let gate = FaultInjector::armed(FaultMode::Fail, 1);
        gate.check("a").unwrap();
        assert!(gate.check("b").is_err());
        gate.check("c").unwrap();
        assert!(!gate.crashed());
    }

    #[test]
    fn short_write_only_tears_writes() {
        let gate = FaultInjector::armed(FaultMode::ShortWrite, 0);
        assert_eq!(gate.check_write("w").unwrap(), WriteGate::Short);
        let gate = FaultInjector::armed(FaultMode::ShortWrite, 0);
        assert!(gate.check("fsync").is_err(), "no buffer to tear");
    }

    #[test]
    fn crash_is_sticky() {
        let gate = FaultInjector::armed(FaultMode::Crash, 0);
        assert!(gate.check("a").is_err());
        assert!(gate.check("b").is_err());
        assert!(gate.check_write("c").is_err());
        assert!(gate.crashed());
        assert_eq!(gate.ops(), vec!["a"], "dead store logs nothing further");
    }
}
