//! The persistence subsystem: a content-addressed blob store plus an
//! append-only [`journal`], giving a server `--data-dir` durability.
//!
//! # On-disk layout
//!
//! ```text
//! <root>/
//!   blobs/d_<digest>     dataset bodies: MPB1 binary frames under the
//!                        canonical-CSV digest
//!   blobs/r_<digest>     result bodies: raw bytes under their own
//!                        digest
//!   journal.log          MPJ1 event log (see journal module docs)
//!   quarantine/<name>    blobs whose re-hash mismatched at recovery
//!   tmp/                 in-flight writes (cleared at every open)
//! ```
//!
//! Blob names are namespaced by kind because the two digests can
//! collide *by design*: the `raw` mechanism's CSV output is its input
//! dataset's canonical form, so `digest_hex(body)` equals the dataset
//! digest while the bytes on disk differ (raw CSV vs `MPB1` frame).
//! One flat namespace would make the second writer silently skip its
//! write and reference the other kind's bytes.
//!
//! # Write ordering contract
//!
//! Every blob lands via *temp file → write → fsync → atomic rename →
//! directory fsync*, and only **then** is the event journaled (write +
//! fsync). A crash at any point therefore leaves one of two states:
//! the journal does not mention the blob (at worst an orphan file or a
//! torn temp file, both garbage-collected or ignored at recovery), or
//! the journal mentions a blob that is fully on disk. The journal
//! itself tolerates a torn append: recovery truncates to the longest
//! valid prefix and overwrites the tail.
//!
//! # Recovery
//!
//! [`Store::open`] replays the journal, then re-reads every blob the
//! replayed state references and **re-hashes it**: a dataset blob must
//! decode and reproduce its canonical digest, a result blob must hash
//! to its file name with the journaled length. Mismatches are moved to
//! `quarantine/` (never served); missing blobs drop their entry (the
//! result is recomputable on demand). What survives is handed back as
//! parsed datasets and ready-to-serve [`CachedResult`]s for
//! `AppState` to seed the registry and cache — a warm restart serves
//! byte-identical cache hits without recomputation.
//!
//! Recovery also keeps the directory from growing without bound under
//! churn: blobs no live entry references (orphans from a crash between
//! rename and journal append, or leftovers of dead records) are swept,
//! and when the journal contains dead records — evictions, completed
//! submissions, entries that were dropped or quarantined — it is
//! compacted to exactly the live set (temp file + fsync + atomic
//! rename, so a crash mid-compaction leaves a valid journal either
//! way).
//!
//! # Failure philosophy at runtime
//!
//! Persistence failures after boot (disk full, injected faults) are
//! logged and the server keeps serving from memory: durability
//! degrades, correctness does not. The fault-injection harness
//! ([`faults`]) drives every crash point in the write path and the
//! recovery tests assert the contract above.

pub mod faults;
pub mod journal;

use std::collections::HashMap;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mobipriv_model::digest::{dataset_digest, digest_hex};
use mobipriv_model::{read_bin, write_bin, Dataset};
use mobipriv_obs::logging::{self, FieldValue};
use mobipriv_obs::metrics::{Counter, Gauge, Registry};

use crate::cache::CachedResult;
use faults::{FaultInjector, WriteGate};
use journal::Record;

const BLOBS_DIR: &str = "blobs";
const QUARANTINE_DIR: &str = "quarantine";
const TMP_DIR: &str = "tmp";
const JOURNAL_FILE: &str = "journal.log";

/// Response content types a recovered result may carry (re-interned
/// from the journal's strings to the `&'static str` the cache wants).
const CONTENT_TYPES: [&str; 3] = ["text/csv", "application/octet-stream", "application/json"];

/// Computation-describing header names the compute layer emits.
/// A journaled name outside this set fails interning and drops the
/// entry (recomputable) rather than inventing a `'static` string.
const HEADER_NAMES: [&str; 11] = [
    "x-mobipriv-mechanism",
    "x-mobipriv-seed",
    "x-mobipriv-input-traces",
    "x-mobipriv-input-fixes",
    "x-mobipriv-output-traces",
    "x-mobipriv-output-fixes",
    "x-mobipriv-distortion-mean-m",
    "x-mobipriv-distortion-median-m",
    "x-mobipriv-distortion-p95-m",
    "x-mobipriv-distortion-max-m",
    "x-mobipriv-coverage-f1",
];

fn intern(table: &[&'static str], name: &str) -> Option<&'static str> {
    table.iter().find(|&&t| t == name).copied()
}

/// Digests double as file-name stems; only the 16-lowercase-hex shape
/// the digest module produces is ever turned into a path.
fn valid_digest(s: &str) -> bool {
    s.len() == 16
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Blob file name for a dataset (see the module docs for why the two
/// kinds are namespaced apart).
fn dataset_blob(digest: &str) -> String {
    format!("d_{digest}")
}

/// Blob file name for a result body.
fn result_blob(body_digest: &str) -> String {
    format!("r_{body_digest}")
}

fn valid_blob_name(name: &str) -> bool {
    (name.starts_with("d_") || name.starts_with("r_")) && valid_digest(&name[2..])
}

struct JournalWriter {
    file: std::fs::File,
    /// Bytes known durable and valid; a failed append seeks back here
    /// so the next one overwrites the torn tail.
    good_bytes: u64,
}

struct BlobIndex {
    count: u64,
    bytes: u64,
    /// Live users per blob file name (two results with the same body
    /// share one `r_` blob); the file is deleted when the count
    /// reaches zero.
    refs: HashMap<String, u32>,
}

/// Point-in-time store sizes for `/v1/stats` and the `/metrics` gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Files under `blobs/`.
    pub blobs: u64,
    /// Their total size in bytes.
    pub blob_bytes: u64,
    /// Valid journal bytes (magic + frames).
    pub journal_bytes: u64,
    /// Records replayed at boot plus records appended since.
    pub journal_records: u64,
    /// Files under `quarantine/`.
    pub quarantined: u64,
}

/// What one boot's recovery did, for logs and counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid records replayed from the journal.
    pub journal_records: u64,
    /// Torn/corrupt journal tail bytes truncated away.
    pub truncated_bytes: u64,
    /// Datasets + results whose blobs re-hashed clean.
    pub blobs_recovered: u64,
    /// Blobs moved to `quarantine/` (re-hash mismatch).
    pub quarantined: u64,
    /// Entries dropped: blob missing, malformed digest in the record,
    /// or headers/content-type no longer intern (all recomputable on
    /// demand).
    pub dropped: u64,
    /// Unreferenced blob files deleted after recovery (orphans from a
    /// crash between rename and journal append, or left behind by
    /// records that did not survive replay).
    pub orphans_swept: u64,
    /// Dead journal bytes reclaimed by boot-time compaction (0 when the
    /// journal was already exactly the live set).
    pub compacted_bytes: u64,
    /// Jobs journaled as submitted but never completed (reported, not
    /// resurrected: the client re-submits and the result key coalesces).
    pub inflight_jobs: u64,
}

/// Everything recovery hands back for seeding the serving state.
pub struct Recovered {
    /// Verified datasets, in journal registration order.
    pub datasets: Vec<Dataset>,
    /// Verified results, ready to serve byte-identical hits.
    pub results: Vec<CachedResult>,
    /// The tallies behind the `mobipriv_store_*_total` counters.
    pub report: RecoveryReport,
}

/// The on-disk store. One instance per server; all methods are
/// thread-safe. See the module docs for the layout and the ordering
/// contract.
pub struct Store {
    root: PathBuf,
    journal: Mutex<JournalWriter>,
    blobs: Mutex<BlobIndex>,
    quarantine_files: AtomicU64,
    faults: FaultInjector,
    tmp_seq: AtomicU64,
    // Counters (monotone) and gauges (refreshed from stats()) exposed
    // on the owning server's registry via register_metrics().
    journal_records_total: Counter,
    blobs_recovered_total: Counter,
    quarantined_total: Counter,
    blobs_gauge: Gauge,
    blob_bytes_gauge: Gauge,
    journal_bytes_gauge: Gauge,
    quarantined_gauge: Gauge,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store").field("root", &self.root).finish()
    }
}

impl Store {
    /// Opens (or initializes) a store rooted at `root` and recovers the
    /// serving state it holds.
    ///
    /// # Errors
    ///
    /// Directory creation, journal open/truncate, or any other
    /// unrecoverable I/O error — the server refuses to start rather
    /// than silently dropping durability. Damaged *content* is not an
    /// error: torn journal tails are truncated and bad blobs
    /// quarantined, both reported in [`Recovered::report`].
    pub fn open(root: &Path) -> std::io::Result<(Arc<Store>, Recovered)> {
        Store::open_with_faults(root, FaultInjector::none())
    }

    /// [`Store::open`] with a fault-injection gate on the post-boot
    /// write path (recovery I/O itself is not gated). Production code
    /// passes [`FaultInjector::none`]; the fault-matrix tests keep a
    /// clone of the injector to count and trip ops.
    pub fn open_with_faults(
        root: &Path,
        faults: FaultInjector,
    ) -> std::io::Result<(Arc<Store>, Recovered)> {
        std::fs::create_dir_all(root.join(BLOBS_DIR))?;
        std::fs::create_dir_all(root.join(QUARANTINE_DIR))?;
        std::fs::create_dir_all(root.join(TMP_DIR))?;
        // Torn temp files from a previous crash are garbage by
        // definition (never renamed, never journaled).
        if let Ok(entries) = std::fs::read_dir(root.join(TMP_DIR)) {
            for entry in entries.flatten() {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        let journal_path = root.join(JOURNAL_FILE);
        let image = match std::fs::read(&journal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let replay = journal::replay(&image);
        let mut report = RecoveryReport {
            journal_records: replay.records.len() as u64,
            truncated_bytes: image.len() as u64 - replay.valid_len,
            ..RecoveryReport::default()
        };

        // Fold the event log into live dataset/result sets.
        let mut dataset_order: Vec<String> = Vec::new();
        // Live datasets map canonical digest → expected blob-byte digest.
        let mut dataset_live: HashMap<String, Option<String>> = HashMap::new();
        let mut result_order: Vec<String> = Vec::new();
        struct ResultMeta {
            content_type: String,
            headers: Vec<(String, String)>,
            body_digest: String,
            body_len: u64,
        }
        let mut result_live: HashMap<String, Option<ResultMeta>> = HashMap::new();
        let mut submitted: HashMap<String, String> = HashMap::new();
        let mut completed: std::collections::HashSet<String> = std::collections::HashSet::new();
        let replayed_records = replay.records.len();
        for record in replay.records {
            match record {
                Record::DatasetRegistered {
                    digest,
                    blob_digest,
                } => {
                    if !dataset_live.contains_key(&digest) {
                        dataset_order.push(digest.clone());
                    }
                    dataset_live.insert(digest, Some(blob_digest));
                }
                Record::DatasetEvicted { digest } => {
                    dataset_live.insert(digest, None);
                }
                Record::JobSubmitted { id, canonical } => {
                    submitted.insert(canonical, id);
                }
                Record::JobCompleted {
                    canonical,
                    content_type,
                    headers,
                    body_digest,
                    body_len,
                } => {
                    completed.insert(canonical.clone());
                    if !result_live.contains_key(&canonical) {
                        result_order.push(canonical.clone());
                    }
                    result_live.insert(
                        canonical,
                        Some(ResultMeta {
                            content_type,
                            headers,
                            body_digest,
                            body_len,
                        }),
                    );
                }
                Record::ResultEvicted { canonical } => {
                    result_live.insert(canonical, None);
                }
            }
        }
        // Set difference rather than remove-on-complete: the executor
        // persists its `JobCompleted` without holding the job-board
        // lock, so it can land *before* the board's `JobSubmitted` for
        // the same key — an inversion that must not read as in-flight.
        submitted.retain(|canonical, _| !completed.contains(canonical));
        report.inflight_jobs = submitted.len() as u64;

        // Re-read and re-hash every referenced blob. Quarantine what
        // mismatches, drop what is missing, keep what verifies — and
        // collect the journal records the survivors would re-produce,
        // so compaction below can rewrite the log as exactly that set.
        let blobs_dir = root.join(BLOBS_DIR);
        let quarantine = |name: &str| -> std::io::Result<()> {
            std::fs::rename(blobs_dir.join(name), root.join(QUARANTINE_DIR).join(name))
        };
        let mut refs: HashMap<String, u32> = HashMap::new();
        let mut live_records: Vec<Record> = Vec::new();
        let mut datasets = Vec::new();
        for digest in dataset_order {
            let Some(Some(blob_digest)) = dataset_live.get(&digest) else {
                continue;
            };
            if !valid_digest(&digest) {
                report.dropped += 1;
                continue;
            }
            let name = dataset_blob(&digest);
            let bytes = match std::fs::read(blobs_dir.join(&name)) {
                Ok(bytes) => bytes,
                Err(_) => {
                    report.dropped += 1;
                    continue;
                }
            };
            if digest_hex(&bytes) != *blob_digest {
                report.quarantined += 1;
                let _ = quarantine(&name);
                continue;
            }
            match read_bin(&bytes[..]) {
                Ok(dataset) if dataset_digest(&dataset) == digest => {
                    *refs.entry(name).or_insert(0) += 1;
                    report.blobs_recovered += 1;
                    live_records.push(Record::DatasetRegistered {
                        digest,
                        blob_digest: blob_digest.clone(),
                    });
                    datasets.push(dataset);
                }
                _ => {
                    report.quarantined += 1;
                    let _ = quarantine(&name);
                }
            }
        }
        let mut results = Vec::new();
        for canonical in result_order {
            let Some(Some(meta)) = result_live.get(&canonical) else {
                continue;
            };
            if !valid_digest(&meta.body_digest) {
                report.dropped += 1;
                continue;
            }
            let name = result_blob(&meta.body_digest);
            let bytes = match std::fs::read(blobs_dir.join(&name)) {
                Ok(bytes) => bytes,
                Err(_) => {
                    report.dropped += 1;
                    continue;
                }
            };
            if bytes.len() as u64 != meta.body_len || digest_hex(&bytes) != meta.body_digest {
                report.quarantined += 1;
                let _ = quarantine(&name);
                continue;
            }
            let content_type = intern(&CONTENT_TYPES, &meta.content_type);
            let headers: Option<Vec<(&'static str, String)>> = meta
                .headers
                .iter()
                .map(|(name, value)| intern(&HEADER_NAMES, name).map(|name| (name, value.clone())))
                .collect();
            match (content_type, headers) {
                (Some(content_type), Some(headers)) => {
                    *refs.entry(name).or_insert(0) += 1;
                    report.blobs_recovered += 1;
                    live_records.push(Record::JobCompleted {
                        canonical: canonical.clone(),
                        content_type: meta.content_type.clone(),
                        headers: meta.headers.clone(),
                        body_digest: meta.body_digest.clone(),
                        body_len: meta.body_len,
                    });
                    results.push(CachedResult {
                        canonical,
                        content_type,
                        headers,
                        body: bytes,
                    });
                }
                _ => report.dropped += 1,
            }
        }

        // Sweep unreferenced blobs: orphans from a crash between rename
        // and journal append, and leftovers of records that did not
        // survive replay. Everything the live state needs holds a ref
        // by now, so anything else is garbage.
        for entry in std::fs::read_dir(&blobs_dir)?.flatten() {
            let name = entry.file_name();
            let referenced = name.to_str().is_some_and(|n| refs.contains_key(n));
            if !referenced && std::fs::remove_file(entry.path()).is_ok() {
                report.orphans_swept += 1;
            }
        }

        // Compact when the journal holds anything but the live set:
        // evictions, completed submissions, dropped or quarantined
        // entries. Temp file + fsync + atomic rename, so a crash here
        // leaves either the old journal or the new one, both valid.
        // (In-flight submissions are dead records too — they were
        // reported above; resurrecting the report every boot would be
        // noise.) Without this, journal.log and replay time grow
        // without bound under eviction/churn.
        let needs_compaction =
            live_records.len() != replayed_records || replay.corrupt_at.is_some();
        let mut good_bytes;
        let mut file;
        if needs_compaction {
            let mut compact = journal::MAGIC.to_vec();
            for record in &live_records {
                compact.extend_from_slice(&journal::encode(record));
            }
            let tmp = root.join(TMP_DIR).join("journal.compact");
            {
                let mut out = std::fs::File::create(&tmp)?;
                out.write_all(&compact)?;
                out.sync_all()?;
            }
            std::fs::rename(&tmp, &journal_path)?;
            if let Ok(dir) = std::fs::File::open(root) {
                let _ = dir.sync_all();
            }
            report.compacted_bytes = replay.valid_len.saturating_sub(compact.len() as u64)
                + (image.len() as u64 - replay.valid_len);
            good_bytes = compact.len() as u64;
            file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&journal_path)?;
        } else {
            // Clean journal: open in place and position the writer at
            // the end of the valid prefix.
            file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&journal_path)?;
            good_bytes = replay.valid_len;
            if good_bytes == 0 {
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(&journal::MAGIC)?;
                file.sync_data()?;
                good_bytes = journal::MAGIC.len() as u64;
            }
        }

        // Size the blob index from the directory (post-sweep, so count
        // and bytes reflect exactly the referenced files).
        let (mut blob_count, mut blob_bytes) = (0u64, 0u64);
        for entry in std::fs::read_dir(&blobs_dir)?.flatten() {
            if let Ok(meta) = entry.metadata() {
                blob_count += 1;
                blob_bytes += meta.len();
            }
        }
        let quarantine_files = std::fs::read_dir(root.join(QUARANTINE_DIR))?
            .flatten()
            .count();

        let store = Store {
            root: root.to_owned(),
            journal: Mutex::new(JournalWriter { file, good_bytes }),
            blobs: Mutex::new(BlobIndex {
                count: blob_count,
                bytes: blob_bytes,
                refs,
            }),
            quarantine_files: AtomicU64::new(quarantine_files as u64),
            faults,
            tmp_seq: AtomicU64::new(0),
            journal_records_total: Counter::new(),
            blobs_recovered_total: Counter::new(),
            quarantined_total: Counter::new(),
            blobs_gauge: Gauge::new(),
            blob_bytes_gauge: Gauge::new(),
            journal_bytes_gauge: Gauge::new(),
            quarantined_gauge: Gauge::new(),
        };
        store.journal_records_total.add(report.journal_records);
        store.blobs_recovered_total.add(report.blobs_recovered);
        store.quarantined_total.add(report.quarantined);
        logging::info(
            "service::store",
            None,
            "store opened",
            &[
                ("root", FieldValue::Str(&root.display().to_string())),
                ("journal_records", FieldValue::U64(report.journal_records)),
                ("blobs_recovered", FieldValue::U64(report.blobs_recovered)),
                ("quarantined", FieldValue::U64(report.quarantined)),
                ("dropped", FieldValue::U64(report.dropped)),
                ("truncated_bytes", FieldValue::U64(report.truncated_bytes)),
                ("orphans_swept", FieldValue::U64(report.orphans_swept)),
                ("compacted_bytes", FieldValue::U64(report.compacted_bytes)),
                ("inflight_jobs", FieldValue::U64(report.inflight_jobs)),
            ],
        );
        Ok((
            Arc::new(store),
            Recovered {
                datasets,
                results,
                report,
            },
        ))
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Exposes the store's counters and gauges on `registry` — the
    /// same atomics back `/v1/stats`, `/metrics` and [`Store::stats`].
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter(
            "mobipriv_store_journal_records_total",
            &[],
            "Journal records replayed at boot plus appended since",
            &self.journal_records_total,
        );
        registry.register_counter(
            "mobipriv_store_blobs_recovered_total",
            &[],
            "Blobs that re-hashed clean at boot (datasets + results)",
            &self.blobs_recovered_total,
        );
        registry.register_counter(
            "mobipriv_store_quarantined_total",
            &[],
            "Blobs whose re-hash mismatched at boot, moved to quarantine",
            &self.quarantined_total,
        );
        registry.register_gauge(
            "mobipriv_store_blobs",
            &[],
            "Files in the blob directory",
            &self.blobs_gauge,
        );
        registry.register_gauge(
            "mobipriv_store_blob_bytes",
            &[],
            "Total size of the blob directory",
            &self.blob_bytes_gauge,
        );
        registry.register_gauge(
            "mobipriv_store_journal_bytes",
            &[],
            "Valid journal bytes on disk",
            &self.journal_bytes_gauge,
        );
        registry.register_gauge(
            "mobipriv_store_quarantined",
            &[],
            "Files in the quarantine directory",
            &self.quarantined_gauge,
        );
    }

    /// Point-in-time sizes (blob count/bytes, journal bytes/records,
    /// quarantined files).
    pub fn stats(&self) -> StoreStats {
        let journal = self.journal.lock().expect("journal mutex poisoned");
        let blobs = self.blobs.lock().expect("blob index poisoned");
        StoreStats {
            blobs: blobs.count,
            blob_bytes: blobs.bytes,
            journal_bytes: journal.good_bytes,
            journal_records: self.journal_records_total.get(),
            quarantined: self.quarantine_files.load(Ordering::Relaxed),
        }
    }

    /// Refreshes the store gauges from [`Store::stats`] (called before
    /// every metrics render).
    pub fn refresh_gauges(&self) {
        let stats = self.stats();
        self.blobs_gauge.set(stats.blobs as i64);
        self.blob_bytes_gauge.set(stats.blob_bytes as i64);
        self.journal_bytes_gauge.set(stats.journal_bytes as i64);
        self.quarantined_gauge.set(stats.quarantined as i64);
    }

    /// Persists a registered dataset: `MPB1` blob under
    /// `d_<canonical digest>`, then a `DatasetRegistered` journal
    /// record.
    ///
    /// # Errors
    ///
    /// Any I/O (or injected) failure; the caller keeps serving from
    /// memory and logs the degradation.
    pub fn put_dataset(&self, digest: &str, dataset: &Dataset) -> std::io::Result<()> {
        let mut bytes = Vec::new();
        write_bin(dataset, &mut bytes)
            .map_err(|e| std::io::Error::other(format!("encoding dataset blob: {e}")))?;
        let name = dataset_blob(digest);
        self.write_blob(&name, &bytes)?;
        self.append(&Record::DatasetRegistered {
            digest: digest.to_owned(),
            blob_digest: digest_hex(&bytes),
        })?;
        self.retain(&name);
        Ok(())
    }

    /// Persists a finished computation: raw body blob under
    /// `r_<body digest>`, then a `JobCompleted` record carrying the
    /// response metadata.
    ///
    /// # Errors
    ///
    /// Any I/O (or injected) failure (see [`Store::put_dataset`]).
    pub fn put_result(&self, result: &CachedResult) -> std::io::Result<()> {
        let body_digest = digest_hex(&result.body);
        let name = result_blob(&body_digest);
        self.write_blob(&name, &result.body)?;
        self.append(&Record::JobCompleted {
            canonical: result.canonical.clone(),
            content_type: result.content_type.to_owned(),
            headers: result
                .headers
                .iter()
                .map(|(name, value)| ((*name).to_owned(), value.clone()))
                .collect(),
            body_digest,
            body_len: result.body.len() as u64,
        })?;
        self.retain(&name);
        Ok(())
    }

    /// Journals a job submission (so a crash can report in-flight work).
    ///
    /// # Errors
    ///
    /// Any I/O (or injected) failure.
    pub fn job_submitted(&self, id: &str, canonical: &str) -> std::io::Result<()> {
        self.append(&Record::JobSubmitted {
            id: id.to_owned(),
            canonical: canonical.to_owned(),
        })
    }

    /// Journals a dataset eviction and deletes its blob when no other
    /// live entry references the same content.
    ///
    /// # Errors
    ///
    /// Journal append failure (the blob then stays until a later boot
    /// replays the in-memory state without it).
    pub fn dataset_evicted(&self, digest: &str) -> std::io::Result<()> {
        self.append(&Record::DatasetEvicted {
            digest: digest.to_owned(),
        })?;
        self.release(&dataset_blob(digest));
        Ok(())
    }

    /// Journals a result eviction and deletes the body blob when
    /// unreferenced.
    ///
    /// # Errors
    ///
    /// Journal append failure (see [`Store::dataset_evicted`]).
    pub fn result_evicted(&self, result: &CachedResult) -> std::io::Result<()> {
        self.result_evicted_parts(&result.canonical, &digest_hex(&result.body))
    }

    /// [`Store::result_evicted`] for callers that already know the body
    /// digest but no longer hold the body — boot-time reconciliation,
    /// where the recovered `CachedResult` was handed to the cache.
    pub(crate) fn result_evicted_parts(
        &self,
        canonical: &str,
        body_digest: &str,
    ) -> std::io::Result<()> {
        self.append(&Record::ResultEvicted {
            canonical: canonical.to_owned(),
        })?;
        self.release(&result_blob(body_digest));
        Ok(())
    }

    /// Temp-write → fsync → rename → dir-fsync, under the blob index
    /// lock (idempotent per blob name: names embed both the kind and
    /// the content digest, so an already-present file is the same
    /// content by construction).
    fn write_blob(&self, name: &str, bytes: &[u8]) -> std::io::Result<()> {
        let mut index = self.blobs.lock().expect("blob index poisoned");
        let final_path = self.root.join(BLOBS_DIR).join(name);
        if final_path.exists() {
            return Ok(());
        }
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self.root.join(TMP_DIR).join(format!("{name}.{seq}"));
        // Failed attempts leave their temp file behind on purpose: the
        // disk state must look exactly like a crash there (recovery
        // clears tmp/); a retry uses a fresh sequence number.
        self.faults.check("blob_create")?;
        let mut file = std::fs::File::create(&tmp)?;
        match self.faults.check_write("blob_write")? {
            WriteGate::Full => file.write_all(bytes)?,
            WriteGate::Short => {
                file.write_all(&bytes[..bytes.len() / 2])?;
                let _ = file.sync_data();
                return Err(std::io::Error::other("injected short write at blob_write"));
            }
        }
        self.faults.check("blob_fsync")?;
        file.sync_all()?;
        drop(file);
        self.faults.check("blob_rename")?;
        std::fs::rename(&tmp, &final_path)?;
        self.faults.check("dir_fsync")?;
        if let Ok(dir) = std::fs::File::open(self.root.join(BLOBS_DIR)) {
            let _ = dir.sync_all();
        }
        index.count += 1;
        index.bytes += bytes.len() as u64;
        Ok(())
    }

    /// Appends one framed record (write + fsync) at the end of the
    /// valid prefix; a failed append leaves `good_bytes` unchanged so
    /// the next one overwrites the torn tail, mirroring what recovery
    /// would do after a crash there.
    fn append(&self, record: &Record) -> std::io::Result<()> {
        let frame = journal::encode(record);
        let mut journal = self.journal.lock().expect("journal mutex poisoned");
        let at = journal.good_bytes;
        journal.file.seek(SeekFrom::Start(at))?;
        match self.faults.check_write("journal_write")? {
            WriteGate::Full => journal.file.write_all(&frame)?,
            WriteGate::Short => {
                journal.file.write_all(&frame[..frame.len() / 2])?;
                let _ = journal.file.sync_data();
                return Err(std::io::Error::other(
                    "injected short write at journal_write",
                ));
            }
        }
        self.faults.check("journal_fsync")?;
        journal.file.sync_data()?;
        journal.good_bytes += frame.len() as u64;
        self.journal_records_total.inc();
        Ok(())
    }

    fn retain(&self, name: &str) {
        let mut index = self.blobs.lock().expect("blob index poisoned");
        *index.refs.entry(name.to_owned()).or_insert(0) += 1;
    }

    /// Drops one reference; deletes the blob file at zero.
    fn release(&self, name: &str) {
        if !valid_blob_name(name) {
            return;
        }
        let mut index = self.blobs.lock().expect("blob index poisoned");
        let remaining = match index.refs.get_mut(name) {
            Some(count) => {
                *count = count.saturating_sub(1);
                *count
            }
            None => return, // never persisted (e.g. its put failed)
        };
        if remaining == 0 {
            index.refs.remove(name);
            let path = self.root.join(BLOBS_DIR).join(name);
            if let Ok(meta) = std::fs::metadata(&path) {
                if std::fs::remove_file(&path).is_ok() {
                    index.count = index.count.saturating_sub(1);
                    index.bytes = index.bytes.saturating_sub(meta.len());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobipriv_geo::LatLng;
    use mobipriv_model::{Fix, Timestamp, Trace, UserId};

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mobipriv-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn dataset(user: u64) -> Dataset {
        Dataset::from_traces(vec![Trace::new(
            UserId::new(user),
            vec![
                Fix::new(LatLng::new(45.76, 4.84).unwrap(), Timestamp::new(0)),
                Fix::new(LatLng::new(45.77, 4.85).unwrap(), Timestamp::new(60)),
            ],
        )
        .unwrap()])
    }

    fn result(canonical: &str, body: &[u8]) -> CachedResult {
        CachedResult {
            canonical: canonical.to_owned(),
            content_type: "text/csv",
            headers: vec![("x-mobipriv-seed", "7".to_owned())],
            body: body.to_vec(),
        }
    }

    #[test]
    fn round_trip_across_reopen() {
        let root = scratch("round-trip");
        let ds = dataset(1);
        let digest = dataset_digest(&ds);
        {
            let (store, recovered) = Store::open(&root).unwrap();
            assert_eq!(recovered.report, RecoveryReport::default());
            store.put_dataset(&digest, &ds).unwrap();
            store.job_submitted("aaaa", "canon|a").unwrap();
            store.put_result(&result("canon|a", b"body-bytes")).unwrap();
            let stats = store.stats();
            assert_eq!(stats.blobs, 2);
            assert_eq!(stats.journal_records, 3);
        }
        let (store, recovered) = Store::open(&root).unwrap();
        assert_eq!(recovered.datasets.len(), 1);
        assert_eq!(dataset_digest(&recovered.datasets[0]), digest);
        assert_eq!(recovered.results.len(), 1);
        assert_eq!(recovered.results[0].body, b"body-bytes");
        assert_eq!(recovered.results[0].canonical, "canon|a");
        assert_eq!(recovered.results[0].content_type, "text/csv");
        assert_eq!(recovered.report.journal_records, 3);
        assert_eq!(recovered.report.blobs_recovered, 2);
        assert_eq!(recovered.report.quarantined, 0);
        assert_eq!(recovered.report.inflight_jobs, 0);
        assert_eq!(store.stats().blobs, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn eviction_deletes_unreferenced_blobs_only() {
        let root = scratch("evict");
        let (store, _) = Store::open(&root).unwrap();
        let ds = dataset(2);
        let digest = dataset_digest(&ds);
        // A result whose body is exactly the dataset's blob content
        // would need bin encoding; instead share a digest between two
        // results to exercise refcounting.
        let shared = result("canon|x", b"shared-body");
        let shared2 = CachedResult {
            canonical: "canon|y".to_owned(),
            ..result("canon|y", b"shared-body")
        };
        store.put_dataset(&digest, &ds).unwrap();
        store.put_result(&shared).unwrap();
        store.put_result(&shared2).unwrap();
        assert_eq!(store.stats().blobs, 2, "shared body stored once");
        store.result_evicted(&shared).unwrap();
        assert_eq!(store.stats().blobs, 2, "still referenced by canon|y");
        store.result_evicted(&shared2).unwrap();
        assert_eq!(store.stats().blobs, 1, "last reference deletes");
        store.dataset_evicted(&digest).unwrap();
        assert_eq!(store.stats().blobs, 0);
        // Reopen: everything evicted, nothing recovered, no quarantine.
        drop(store);
        let (_, recovered) = Store::open(&root).unwrap();
        assert_eq!(recovered.datasets.len(), 0);
        assert_eq!(recovered.results.len(), 0);
        assert_eq!(recovered.report.quarantined, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupted_blob_is_quarantined_not_served() {
        let root = scratch("quarantine");
        let ds = dataset(3);
        let digest = dataset_digest(&ds);
        {
            let (store, _) = Store::open(&root).unwrap();
            store.put_dataset(&digest, &ds).unwrap();
            store.put_result(&result("canon|q", b"precious")).unwrap();
        }
        // Flip one bit in the result blob.
        let blob_name = result_blob(&digest_hex(b"precious"));
        let blob = root.join(BLOBS_DIR).join(&blob_name);
        let mut bytes = std::fs::read(&blob).unwrap();
        bytes[0] ^= 0x01;
        std::fs::write(&blob, &bytes).unwrap();
        let (store, recovered) = Store::open(&root).unwrap();
        assert_eq!(recovered.results.len(), 0, "corrupt result not served");
        assert_eq!(recovered.datasets.len(), 1, "dataset unaffected");
        assert_eq!(recovered.report.quarantined, 1);
        assert!(root.join(QUARANTINE_DIR).join(&blob_name).exists());
        assert!(!blob.exists());
        assert_eq!(store.stats().quarantined, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// The `raw` mechanism's CSV output *is* its input dataset's
    /// canonical form, so the result's body digest equals the dataset
    /// digest while the stored bytes differ (raw CSV vs `MPB1`). The
    /// kind-namespaced blob names must keep the two apart.
    #[test]
    fn raw_result_colliding_with_its_dataset_digest_round_trips() {
        let root = scratch("collision");
        let ds = dataset(5);
        let digest = dataset_digest(&ds);
        let mut canonical_csv = Vec::new();
        mobipriv_model::write_csv(&ds, &mut canonical_csv).unwrap();
        assert_eq!(
            digest_hex(&canonical_csv),
            digest,
            "precondition: raw output digest collides with dataset digest"
        );
        {
            let (store, _) = Store::open(&root).unwrap();
            store.put_dataset(&digest, &ds).unwrap();
            store
                .put_result(&result("canon|raw", &canonical_csv))
                .unwrap();
            assert_eq!(store.stats().blobs, 2, "one file per kind, no collision");
        }
        let (store, recovered) = Store::open(&root).unwrap();
        assert_eq!(recovered.report.quarantined, 0);
        assert_eq!(recovered.report.dropped, 0);
        assert_eq!(recovered.datasets.len(), 1);
        assert_eq!(dataset_digest(&recovered.datasets[0]), digest);
        assert_eq!(recovered.results.len(), 1);
        assert_eq!(recovered.results[0].body, canonical_csv, "byte-identical");
        // Evicting the result must not take the dataset's blob with it.
        store
            .result_evicted(&result("canon|raw", &canonical_csv))
            .unwrap();
        drop(store);
        let (_, recovered) = Store::open(&root).unwrap();
        assert_eq!(recovered.datasets.len(), 1, "dataset survives");
        assert_eq!(recovered.results.len(), 0);
        assert_eq!(recovered.report.quarantined, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Dead journal records (evictions, completed submissions, dropped
    /// entries) are compacted away at boot, and blobs nothing live
    /// references are swept — the directory does not grow without
    /// bound under churn.
    #[test]
    fn boot_compacts_the_journal_and_sweeps_orphan_blobs() {
        let root = scratch("compact");
        let ds = dataset(6);
        let digest = dataset_digest(&ds);
        {
            let (store, _) = Store::open(&root).unwrap();
            store.put_dataset(&digest, &ds).unwrap();
            store.job_submitted("cccc", "canon|kept").unwrap();
            store
                .put_result(&result("canon|kept", b"kept-body"))
                .unwrap();
            // Churn: a result that is then evicted (journals 2 records,
            // deletes its blob)...
            store
                .put_result(&result("canon|gone", b"gone-body"))
                .unwrap();
            store
                .result_evicted(&result("canon|gone", b"gone-body"))
                .unwrap();
        }
        // ...plus an orphan blob, as a crash between rename and journal
        // append would leave it.
        std::fs::write(
            root.join(BLOBS_DIR).join("r_00000000000000aa"),
            b"orphan-bytes",
        )
        .unwrap();
        let journal_before = std::fs::metadata(root.join(JOURNAL_FILE)).unwrap().len();
        let (store, recovered) = Store::open(&root).unwrap();
        assert_eq!(recovered.report.journal_records, 5);
        assert_eq!(recovered.report.orphans_swept, 1);
        assert!(recovered.report.compacted_bytes > 0);
        assert_eq!(recovered.datasets.len(), 1);
        assert_eq!(recovered.results.len(), 1);
        assert!(!root.join(BLOBS_DIR).join("r_00000000000000aa").exists());
        let journal_after = std::fs::metadata(root.join(JOURNAL_FILE)).unwrap().len();
        assert!(
            journal_after < journal_before,
            "dead records reclaimed: {journal_after} < {journal_before}"
        );
        assert_eq!(store.stats().blobs, 2, "post-sweep index is exact");
        drop(store);
        // The compacted journal replays to the same state, and a clean
        // journal is left alone (no rewrite churn).
        let (_, recovered) = Store::open(&root).unwrap();
        assert_eq!(recovered.report.journal_records, 2);
        assert_eq!(recovered.report.compacted_bytes, 0);
        assert_eq!(recovered.datasets.len(), 1);
        assert_eq!(recovered.results.len(), 1);
        assert_eq!(recovered.results[0].body, b"kept-body");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_journal_tail_is_truncated_and_overwritten() {
        let root = scratch("torn-tail");
        let ds = dataset(4);
        let digest = dataset_digest(&ds);
        {
            let (store, _) = Store::open(&root).unwrap();
            store.put_dataset(&digest, &ds).unwrap();
        }
        // Simulate a crash mid-append: garbage after the valid prefix.
        let path = root.join(JOURNAL_FILE);
        let valid = std::fs::metadata(&path).unwrap().len();
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        file.write_all(&[0x17, 0x00, 0x00]).unwrap();
        drop(file);
        let (store, recovered) = Store::open(&root).unwrap();
        assert_eq!(recovered.datasets.len(), 1);
        assert_eq!(recovered.report.truncated_bytes, 3);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), valid);
        // Appending after truncation keeps the journal valid.
        store.put_result(&result("canon|t", b"after-tear")).unwrap();
        drop(store);
        let (_, recovered) = Store::open(&root).unwrap();
        assert_eq!(recovered.results.len(), 1);
        assert_eq!(recovered.report.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&root);
    }
}
