//! The append-only journal: what happened to the serving state, in
//! order, in a format a half-written tail cannot corrupt.
//!
//! # On-disk grammar
//!
//! ```text
//! journal  := "MPJ1" frame*
//! frame    := payload_len:u32le  checksum:u64le  payload
//! checksum := fnv1a64(payload)
//! payload  := tag:u8 fields          (see Record; strings are
//!                                     len:u32le + UTF-8 bytes)
//! ```
//!
//! Every frame is self-validating: the length prefix bounds the
//! payload, the FNV-1a checksum covers it, and the payload decoder
//! accepts only a known tag with exactly-consumed fields. [`replay`]
//! walks frames until the first one that fails any of those checks and
//! reports `(records so far, byte offset of the valid prefix, offset
//! of the corruption if any)` — so a torn tail (crash mid-append) or a
//! flipped bit truncates the history at a precise point instead of
//! poisoning it. The store then physically truncates the file there
//! and appends over the garbage.
//!
//! Records reference blobs by digest; they never embed bodies. Replay
//! is therefore cheap (a few bytes per event) and blob integrity is
//! checked separately by re-hashing at recovery time.

use mobipriv_model::digest::fnv1a64;

/// File magic, first four bytes of every journal.
pub const MAGIC: [u8; 4] = *b"MPJ1";

/// Sanity cap on one record's payload (records are metadata — digests,
/// canonical keys, headers — never bodies).
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// Cap on headers per [`Record::JobCompleted`] (the compute layer
/// emits ~a dozen).
const MAX_HEADERS: u16 = 256;

/// One serving-state event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A dataset blob landed under `blobs/d_<digest>` (canonical-CSV
    /// digest; the blob itself is `MPB1`-encoded).
    DatasetRegistered {
        /// Content digest of the canonical CSV form.
        digest: String,
        /// Digest of the `MPB1` bytes as written, so recovery detects
        /// any bit flip byte-exactly (the canonical digest alone would
        /// miss flips below CSV print precision).
        blob_digest: String,
    },
    /// A job was accepted onto the queue (recovery reports these as
    /// in-flight when no completion follows; they are not resurrected).
    JobSubmitted {
        /// Content-addressed job id (= result key).
        id: String,
        /// Full canonical cache-key string.
        canonical: String,
    },
    /// A computation finished and its body landed under
    /// `blobs/r_<body_digest>`; carries everything needed to rebuild
    /// the cached response except the body bytes.
    JobCompleted {
        /// Full canonical cache-key string.
        canonical: String,
        /// Response content type (re-interned on decode).
        content_type: String,
        /// Computation-describing headers (names re-interned on decode).
        headers: Vec<(String, String)>,
        /// Digest of the body bytes = the blob's file-name stem.
        body_digest: String,
        /// Body length, cross-checked against the blob at recovery.
        body_len: u64,
    },
    /// The registry evicted a dataset (LRU); its blob is deletable
    /// once unreferenced.
    DatasetEvicted {
        /// Content digest of the evicted dataset.
        digest: String,
    },
    /// The result cache evicted a completed entry (LRU).
    ResultEvicted {
        /// Canonical key of the evicted result.
        canonical: String,
    },
}

const TAG_DATASET_REGISTERED: u8 = 1;
const TAG_JOB_SUBMITTED: u8 = 2;
const TAG_JOB_COMPLETED: u8 = 3;
const TAG_DATASET_EVICTED: u8 = 4;
const TAG_RESULT_EVICTED: u8 = 5;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Serializes one record's payload (tag + fields, no framing).
pub fn encode_payload(record: &Record) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        Record::DatasetRegistered {
            digest,
            blob_digest,
        } => {
            out.push(TAG_DATASET_REGISTERED);
            put_str(&mut out, digest);
            put_str(&mut out, blob_digest);
        }
        Record::JobSubmitted { id, canonical } => {
            out.push(TAG_JOB_SUBMITTED);
            put_str(&mut out, id);
            put_str(&mut out, canonical);
        }
        Record::JobCompleted {
            canonical,
            content_type,
            headers,
            body_digest,
            body_len,
        } => {
            out.push(TAG_JOB_COMPLETED);
            put_str(&mut out, canonical);
            put_str(&mut out, content_type);
            out.extend_from_slice(&(headers.len() as u16).to_le_bytes());
            for (name, value) in headers {
                put_str(&mut out, name);
                put_str(&mut out, value);
            }
            put_str(&mut out, body_digest);
            out.extend_from_slice(&body_len.to_le_bytes());
        }
        Record::DatasetEvicted { digest } => {
            out.push(TAG_DATASET_EVICTED);
            put_str(&mut out, digest);
        }
        Record::ResultEvicted { canonical } => {
            out.push(TAG_RESULT_EVICTED);
            put_str(&mut out, canonical);
        }
    }
    out
}

/// Serializes one record as a complete frame (length prefix + checksum
/// + payload), ready to append.
pub fn encode(record: &Record) -> Vec<u8> {
    let payload = encode_payload(record);
    let mut frame = Vec::with_capacity(12 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_le_bytes(b.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Deserializes one payload. `None` on any malformation: unknown tag,
/// truncated field, invalid UTF-8, over-cap header count, or trailing
/// bytes (a payload must be consumed exactly).
pub fn decode_payload(bytes: &[u8]) -> Option<Record> {
    let mut r = Reader { bytes, pos: 0 };
    let record = match r.u8()? {
        TAG_DATASET_REGISTERED => Record::DatasetRegistered {
            digest: r.str()?,
            blob_digest: r.str()?,
        },
        TAG_JOB_SUBMITTED => Record::JobSubmitted {
            id: r.str()?,
            canonical: r.str()?,
        },
        TAG_JOB_COMPLETED => {
            let canonical = r.str()?;
            let content_type = r.str()?;
            let count = r.u16()?;
            if count > MAX_HEADERS {
                return None;
            }
            let mut headers = Vec::with_capacity(count as usize);
            for _ in 0..count {
                headers.push((r.str()?, r.str()?));
            }
            Record::JobCompleted {
                canonical,
                content_type,
                headers,
                body_digest: r.str()?,
                body_len: r.u64()?,
            }
        }
        TAG_DATASET_EVICTED => Record::DatasetEvicted { digest: r.str()? },
        TAG_RESULT_EVICTED => Record::ResultEvicted {
            canonical: r.str()?,
        },
        _ => return None,
    };
    r.done().then_some(record)
}

/// What [`replay`] recovered from a journal image.
#[derive(Debug)]
pub struct Replay {
    /// Every record in the longest valid prefix, in append order.
    pub records: Vec<Record>,
    /// Byte length of that prefix (including the magic); the store
    /// truncates the file here before appending again.
    pub valid_len: u64,
    /// Offset of the first invalid byte run (torn frame, checksum or
    /// decode failure), `None` for a clean file. Always equals
    /// [`Replay::valid_len`] when present; kept separate so callers can
    /// tell "clean EOF" from "stopped at damage".
    pub corrupt_at: Option<u64>,
}

/// Walks a journal image, recovering the longest valid prefix of
/// records. Never panics, whatever the bytes: damage stops the walk at
/// the frame boundary where it was detected.
pub fn replay(bytes: &[u8]) -> Replay {
    if bytes.is_empty() {
        return Replay {
            records: Vec::new(),
            valid_len: 0,
            corrupt_at: None,
        };
    }
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Replay {
            records: Vec::new(),
            valid_len: 0,
            corrupt_at: Some(0),
        };
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    let mut corrupt_at = None;
    while pos < bytes.len() {
        let frame_ok = (|| {
            let rest = &bytes[pos..];
            if rest.len() < 12 {
                return None; // torn frame header
            }
            let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
            if len > MAX_PAYLOAD as usize || 12 + len > rest.len() {
                return None; // impossible or torn payload
            }
            let sum = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
            let payload = &rest[12..12 + len];
            if fnv1a64(payload) != sum {
                return None; // bit rot or tear inside the payload
            }
            decode_payload(payload).map(|record| (record, 12 + len))
        })();
        match frame_ok {
            Some((record, advance)) => {
                records.push(record);
                pos += advance;
            }
            None => {
                corrupt_at = Some(pos as u64);
                break;
            }
        }
    }
    Replay {
        records,
        valid_len: pos as u64,
        corrupt_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record::DatasetRegistered {
                digest: "0123456789abcdef".into(),
                blob_digest: "1122334455667788".into(),
            },
            Record::JobSubmitted {
                id: "fedcba9876543210".into(),
                canonical: "v1|anonymize|0123456789abcdef|raw|seed=7|report=0".into(),
            },
            Record::JobCompleted {
                canonical: "v1|anonymize|0123456789abcdef|raw|seed=7|report=0".into(),
                content_type: "text/csv".into(),
                headers: vec![
                    ("x-mobipriv-mechanism".into(), "raw".into()),
                    ("x-mobipriv-seed".into(), "7".into()),
                ],
                body_digest: "00ff00ff00ff00ff".into(),
                body_len: 42,
            },
            Record::DatasetEvicted {
                digest: "0123456789abcdef".into(),
            },
            Record::ResultEvicted {
                canonical: "v1|anonymize|0123456789abcdef|raw|seed=7|report=0".into(),
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for record in sample() {
            let payload = encode_payload(&record);
            assert_eq!(decode_payload(&payload), Some(record.clone()));
            // Byte fixed point: decode∘encode re-encodes identically.
            let again = decode_payload(&payload).unwrap();
            assert_eq!(encode_payload(&again), payload);
        }
    }

    #[test]
    fn replay_walks_a_clean_file() {
        let mut image = MAGIC.to_vec();
        for record in sample() {
            image.extend_from_slice(&encode(&record));
        }
        let replay = replay(&image);
        assert_eq!(replay.records, sample());
        assert_eq!(replay.valid_len, image.len() as u64);
        assert_eq!(replay.corrupt_at, None);
    }

    #[test]
    fn empty_and_bad_magic() {
        let r = replay(b"");
        assert_eq!((r.records.len(), r.valid_len, r.corrupt_at), (0, 0, None));
        let r = replay(b"NOPE");
        assert_eq!((r.valid_len, r.corrupt_at), (0, Some(0)));
        let r = replay(b"MP");
        assert_eq!((r.valid_len, r.corrupt_at), (0, Some(0)));
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let records = sample();
        let mut image = MAGIC.to_vec();
        for record in &records {
            image.extend_from_slice(&encode(record));
        }
        let boundary_after_two =
            (MAGIC.len() + encode(&records[0]).len() + encode(&records[1]).len()) as u64;
        // Cut in the middle of the third frame.
        let cut = boundary_after_two as usize + 5;
        let r = replay(&image[..cut]);
        assert_eq!(r.records, records[..2]);
        assert_eq!(r.valid_len, boundary_after_two);
        assert_eq!(r.corrupt_at, Some(boundary_after_two));
    }

    #[test]
    fn trailing_garbage_is_damage_not_panic() {
        let mut image = MAGIC.to_vec();
        image.extend_from_slice(&encode(&sample()[0]));
        let good = image.len() as u64;
        image.extend_from_slice(&[0xde, 0xad, 0xbe]);
        let r = replay(&image);
        assert_eq!(r.records.len(), 1);
        assert_eq!((r.valid_len, r.corrupt_at), (good, Some(good)));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(decode_payload(&[99]), None);
        assert_eq!(decode_payload(&[]), None);
        // Trailing bytes after a valid record are rejected too.
        let mut payload = encode_payload(&sample()[0]);
        payload.push(0);
        assert_eq!(decode_payload(&payload), None);
    }
}
