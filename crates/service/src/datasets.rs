//! The content-addressed dataset registry behind `POST /v1/datasets`.
//!
//! A curator uploads a dataset once; the registry parses it through the
//! streaming reader, serializes it back to *canonical CSV* and digests
//! those bytes ([`mobipriv_model::digest`]) — so the same data arriving
//! as CSV, NDJSON, chunked or fixed-length always lands under the same
//! digest, and re-uploading is an idempotent no-op. Jobs and the
//! result cache then address the dataset by digest alone: the paper's
//! publish-once/query-many model, where one upload serves every
//! protected view published from it.
//!
//! # Eviction
//!
//! The registry is bounded by a canonical-byte budget. Admission
//! evicts least-recently-used entries until the newcomer fits; an entry
//! larger than the whole budget is rejected outright (413 upstream).
//! Jobs hold an `Arc` to their dataset from submission, so eviction
//! never yanks data out from under a queued or running job — it only
//! makes *future* submissions against that digest 404 until re-upload.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use mobipriv_model::{digest::digest_hex, write_csv, Dataset};
use mobipriv_obs::logging::{self, FieldValue};

use crate::store::Store;

/// One registered dataset plus the metadata the API reports.
#[derive(Debug)]
pub struct DatasetEntry {
    /// Content digest of the canonical CSV form (16 hex digits).
    pub digest: String,
    /// The parsed dataset, shared with any job that references it.
    pub dataset: Arc<Dataset>,
    /// Canonical CSV size in bytes (the unit the byte budget counts).
    pub bytes: u64,
    /// Number of traces.
    pub traces: usize,
    /// Number of fixes across all traces.
    pub fixes: u64,
}

struct Slot {
    entry: Arc<DatasetEntry>,
    last_used: u64,
}

struct Inner {
    slots: HashMap<String, Slot>,
    total_bytes: u64,
}

/// Bounded, content-addressed, LRU-evicting dataset store.
pub struct DatasetRegistry {
    inner: Mutex<Inner>,
    clock: AtomicU64,
    max_bytes: u64,
    /// Persistence hook (set once at boot when the server has a
    /// `--data-dir`): new registrations are written through, evictions
    /// are journaled.
    store: OnceLock<Arc<Store>>,
    /// Serializes persistence I/O in the order decided under `inner`
    /// (lock order: `inner` → `persist`, acquired before `inner` is
    /// released). The multi-fsync store writes happen under this lock
    /// only, so lookups and registrations never stall behind disk I/O,
    /// while a concurrent re-registration of an evicted digest still
    /// cannot journal ahead of the eviction record.
    persist: Mutex<()>,
}

/// What [`DatasetRegistry::register`] did with the upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Registered {
    /// First time this content was seen.
    New,
    /// The digest was already present (idempotent re-upload).
    Exists,
}

impl DatasetRegistry {
    /// Creates a registry bounded to `max_bytes` of canonical CSV.
    pub fn new(max_bytes: u64) -> Self {
        DatasetRegistry {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                total_bytes: 0,
            }),
            clock: AtomicU64::new(0),
            max_bytes,
            store: OnceLock::new(),
            persist: Mutex::new(()),
        }
    }

    /// Attaches the persistence layer. Called once at boot, *after*
    /// recovered datasets have been re-registered — seeding must not
    /// re-persist what was just read back from disk.
    pub(crate) fn attach_store(&self, store: Arc<Store>) {
        let _ = self.store.set(store);
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a parsed dataset, returning its entry and whether the
    /// content was new. `None` when the dataset's canonical form alone
    /// exceeds the registry budget (nothing is evicted in that case).
    pub fn register(&self, dataset: Dataset) -> Option<(Arc<DatasetEntry>, Registered)> {
        let mut canonical = Vec::new();
        write_csv(&dataset, &mut canonical).expect("serializing to memory cannot fail");
        let digest = digest_hex(&canonical);
        let bytes = canonical.len() as u64;
        drop(canonical);
        if bytes > self.max_bytes {
            return None;
        }
        let last_used = self.tick();
        let mut inner = self.inner.lock().expect("registry mutex poisoned");
        if let Some(slot) = inner.slots.get_mut(&digest) {
            slot.last_used = last_used;
            return Some((Arc::clone(&slot.entry), Registered::Exists));
        }
        // Evict least-recently-used entries until the newcomer fits.
        let mut evicted: Vec<String> = Vec::new();
        while inner.total_bytes + bytes > self.max_bytes {
            let victim = inner
                .slots
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(digest, _)| digest.clone())
                .expect("non-empty: total_bytes > 0 implies a slot exists");
            let slot = inner.slots.remove(&victim).expect("victim exists");
            inner.total_bytes -= slot.entry.bytes;
            evicted.push(victim);
        }
        let entry = Arc::new(DatasetEntry {
            digest: digest.clone(),
            traces: dataset.len(),
            fixes: dataset.total_fixes() as u64,
            bytes,
            dataset: Arc::new(dataset),
        });
        inner.total_bytes += bytes;
        inner.slots.insert(
            digest,
            Slot {
                entry: Arc::clone(&entry),
                last_used,
            },
        );
        // Write through before the upload is acknowledged, but off the
        // registry lock: the store's fsync chain must not stall every
        // concurrent lookup. `persist` is taken while `inner` is still
        // held, so journal order matches registry order. A persist
        // failure degrades durability only — the dataset still serves
        // from memory.
        let store = self.store.get();
        let _persist = store.map(|_| self.persist.lock().expect("persist mutex poisoned"));
        drop(inner);
        if let Some(store) = store {
            for victim in &evicted {
                if let Err(e) = store.dataset_evicted(victim) {
                    logging::warn(
                        "service::datasets",
                        None,
                        "eviction not journaled",
                        &[
                            ("digest", FieldValue::Str(victim)),
                            ("error", FieldValue::Str(&e.to_string())),
                        ],
                    );
                }
            }
            if let Err(e) = store.put_dataset(&entry.digest, &entry.dataset) {
                logging::warn(
                    "service::datasets",
                    None,
                    "dataset not persisted; serving from memory only",
                    &[
                        ("digest", FieldValue::Str(&entry.digest)),
                        ("error", FieldValue::Str(&e.to_string())),
                    ],
                );
            }
        }
        Some((entry, Registered::New))
    }

    /// Whether a digest is currently registered, without refreshing its
    /// LRU position (boot-time reconciliation must not promote entries).
    pub(crate) fn contains(&self, digest: &str) -> bool {
        let inner = self.inner.lock().expect("registry mutex poisoned");
        inner.slots.contains_key(digest)
    }

    /// Looks a dataset up by digest (refreshes its LRU position).
    pub fn get(&self, digest: &str) -> Option<Arc<DatasetEntry>> {
        let last_used = self.tick();
        let mut inner = self.inner.lock().expect("registry mutex poisoned");
        inner.slots.get_mut(digest).map(|slot| {
            slot.last_used = last_used;
            Arc::clone(&slot.entry)
        })
    }

    /// Snapshot of every entry's metadata, most recently used first.
    pub fn list(&self) -> Vec<Arc<DatasetEntry>> {
        let inner = self.inner.lock().expect("registry mutex poisoned");
        let mut slots: Vec<(&u64, &Arc<DatasetEntry>)> = inner
            .slots
            .values()
            .map(|slot| (&slot.last_used, &slot.entry))
            .collect();
        slots.sort_by(|a, b| b.0.cmp(a.0));
        slots.into_iter().map(|(_, e)| Arc::clone(e)).collect()
    }

    /// The registry's canonical-byte budget.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// `(entry count, total canonical bytes)`.
    pub fn stats(&self) -> (usize, u64) {
        let inner = self.inner.lock().expect("registry mutex poisoned");
        (inner.slots.len(), inner.total_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobipriv_geo::LatLng;
    use mobipriv_model::{Fix, Timestamp, Trace, UserId};

    fn dataset(user: u64, lat: f64) -> Dataset {
        Dataset::from_traces(vec![Trace::new(
            UserId::new(user),
            vec![Fix::new(LatLng::new(lat, 5.0).unwrap(), Timestamp::new(0))],
        )
        .unwrap()])
    }

    #[test]
    fn register_is_idempotent_and_content_addressed() {
        let registry = DatasetRegistry::new(1 << 20);
        let (a, fresh) = registry.register(dataset(1, 45.0)).unwrap();
        assert_eq!(fresh, Registered::New);
        let (b, again) = registry.register(dataset(1, 45.0)).unwrap();
        assert_eq!(again, Registered::Exists);
        assert_eq!(a.digest, b.digest);
        assert!(Arc::ptr_eq(&a.dataset, &b.dataset), "no duplicate storage");
        let (c, _) = registry.register(dataset(1, 46.0)).unwrap();
        assert_ne!(a.digest, c.digest);
        assert_eq!(registry.stats().0, 2);
        assert!(registry.get(&a.digest).is_some());
        assert!(registry.get("0000000000000000").is_none());
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let (probe, _) = DatasetRegistry::new(1 << 20)
            .register(dataset(1, 45.0))
            .unwrap();
        let one = probe.bytes;
        // Room for two entries of this size, not three.
        let registry = DatasetRegistry::new(one * 2 + one / 2);
        let (a, _) = registry.register(dataset(1, 45.0)).unwrap();
        let (b, _) = registry.register(dataset(2, 45.0)).unwrap();
        // Touch `a` so `b` is the LRU victim.
        registry.get(&a.digest).unwrap();
        let (c, _) = registry.register(dataset(3, 45.0)).unwrap();
        assert!(registry.get(&a.digest).is_some());
        assert!(registry.get(&b.digest).is_none(), "LRU entry evicted");
        assert!(registry.get(&c.digest).is_some());
        let (count, bytes) = registry.stats();
        assert_eq!(count, 2);
        assert!(bytes <= one * 2 + one / 2);
        // An upload that can never fit is rejected, not evict-everything.
        let tiny = DatasetRegistry::new(8);
        assert!(tiny.register(dataset(1, 45.0)).is_none());
    }
}
