//! The content-addressed result cache with single-flight computation.
//!
//! Results are keyed by the canonical description of the work —
//! `(dataset digest, canonical mechanism params, seed, kind, …)` joined
//! into one canonical key string (see [`result_key`] for the textual
//! address derived from it). Because every computation in the system is
//! a pure function of that key (the engine's determinism contract), a
//! cached body is *the* answer, byte for byte; the cache can therefore:
//!
//! * **coalesce** concurrent identical requests into one computation —
//!   the first caller computes, the rest block on a condvar and share
//!   the leader's `Arc`'d result (single-flight); and
//! * **serve** repeated requests without recomputation, marking them
//!   with `x-mobipriv-cache: hit`.
//!
//! # Eviction
//!
//! Completed entries are LRU-evicted against a body-byte budget.
//! In-flight entries are never evicted (they hold no body yet); a
//! result larger than the whole budget is returned to its caller but
//! not retained.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use mobipriv_model::digest::digest_hex;
use mobipriv_obs::logging::{self, FieldValue};
use mobipriv_obs::metrics::{Counter, Registry};

use crate::store::Store;
use crate::ServiceError;

/// Derives the 16-hex-digit result address from a canonical key string.
/// This is what `GET /v1/results/:key` takes and what job ids are.
pub fn result_key(canonical: &str) -> String {
    digest_hex(canonical.as_bytes())
}

/// A finished computation: the response body plus the headers that
/// describe the computation itself (not the transport). Serving a hit
/// replays these verbatim, so hits and misses are byte-identical in
/// everything but the `x-mobipriv-cache` marker.
#[derive(Debug)]
pub struct CachedResult {
    /// The canonical key string this result answers.
    pub canonical: String,
    /// Response `content-type`.
    pub content_type: &'static str,
    /// Computation-describing headers (mechanism, seed, counts, …).
    pub headers: Vec<(&'static str, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

/// Shared cell the single-flight followers wait on. Failures are stored
/// as the leader's [`ServiceError`] itself (it is `Clone`), so every
/// follower observes the identical error — status line and body bytes —
/// that the leader produced.
struct Flight {
    done: Mutex<Option<Result<Arc<CachedResult>, ServiceError>>>,
    cv: Condvar,
}

enum Slot {
    InFlight(Arc<Flight>),
    Done {
        result: Arc<CachedResult>,
        last_used: u64,
    },
}

struct Inner {
    // Keyed by the full canonical string (collision-proof); `by_key`
    // maps the 16-hex textual address back to it for `GET /v1/results`.
    slots: HashMap<String, Slot>,
    by_key: HashMap<String, String>,
    done_bytes: u64,
}

/// Whether a lookup was answered from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from a completed entry, or by joining an in-flight
    /// computation some other request started.
    Hit,
    /// This request ran the computation.
    Miss,
}

impl CacheOutcome {
    /// The `x-mobipriv-cache` header value.
    pub fn header_value(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// Bounded single-flight result cache.
///
/// The hit/miss/computation counters are [`mobipriv_obs`] counter
/// handles: [`ResultCache::register_metrics`] exposes the *same*
/// atomics on a metrics registry, so `/v1/stats`, `/metrics` and the
/// accessor methods here can never disagree.
pub struct ResultCache {
    inner: Mutex<Inner>,
    clock: AtomicU64,
    max_bytes: u64,
    computations: Counter,
    hits: Counter,
    misses: Counter,
    /// Persistence hook (set once at boot when the server has a
    /// `--data-dir`): completed results are written through before they
    /// are published, evictions are journaled.
    store: OnceLock<Arc<Store>>,
    /// Serializes persistence I/O in the order decided under `inner`
    /// (lock order: `inner` → `persist`, acquired before `inner` is
    /// released where ordering matters). Store fsyncs happen under this
    /// lock only, never under `inner`, so hits and flight joins never
    /// stall behind disk I/O — while a recomputation of an evicted key
    /// still cannot journal its completion ahead of the eviction record.
    persist: Mutex<()>,
}

impl ResultCache {
    /// Creates a cache bounded to `max_bytes` of completed bodies.
    pub fn new(max_bytes: u64) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                by_key: HashMap::new(),
                done_bytes: 0,
            }),
            clock: AtomicU64::new(0),
            max_bytes,
            computations: Counter::new(),
            hits: Counter::new(),
            misses: Counter::new(),
            store: OnceLock::new(),
            persist: Mutex::new(()),
        }
    }

    /// Attaches the persistence layer. Called once at boot, *after*
    /// recovered results have been seeded via
    /// [`ResultCache::insert_recovered`] — seeding must not re-persist
    /// what was just read back from disk.
    pub(crate) fn attach_store(&self, store: Arc<Store>) {
        let _ = self.store.set(store);
    }

    /// Seeds one recovered result (boot-time replay). Oversized bodies
    /// are skipped exactly as [`ResultCache::get_or_compute`] would
    /// skip retaining them; the LRU budget applies as usual. Runs
    /// before the store is attached, so budget evictions here are not
    /// journaled — `AppState` reconciles the store against what the
    /// cache actually retained after seeding.
    pub(crate) fn insert_recovered(&self, result: CachedResult) {
        if result.body.len() as u64 > self.max_bytes {
            return;
        }
        let canonical = result.canonical.clone();
        let last_used = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("cache mutex poisoned");
        if inner.slots.contains_key(&canonical) {
            return;
        }
        let result = Arc::new(result);
        let _seeding_victims = self.retain_locked(&mut inner, &canonical, &result, last_used);
    }

    /// Whether a completed entry for this canonical key is retained,
    /// without touching its LRU position or the hit counter (boot-time
    /// reconciliation must not distort either).
    pub(crate) fn contains(&self, canonical: &str) -> bool {
        let inner = self.inner.lock().expect("cache mutex poisoned");
        matches!(inner.slots.get(canonical), Some(Slot::Done { .. }))
    }

    /// Exposes the cache's own counters on `registry`
    /// (`mobipriv_cache_{hits,misses,computations}_total`) — one set of
    /// atomics backing both the API and the exposition.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter(
            "mobipriv_cache_hits_total",
            &[],
            "Result-cache hits (completed entries and joined flights)",
            &self.hits,
        );
        registry.register_counter(
            "mobipriv_cache_misses_total",
            &[],
            "Result-cache misses (computations led by the caller)",
            &self.misses,
        );
        registry.register_counter(
            "mobipriv_cache_computations_total",
            &[],
            "Computations actually run (single-flight leader count)",
            &self.computations,
        );
    }

    /// Times the computation has actually run (the single-flight
    /// counter the stress tests assert on).
    pub fn computations(&self) -> u64 {
        self.computations.get()
    }

    /// `(hits, misses)` over the cache's lifetime.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// `(completed entries, completed body bytes)`.
    pub fn stats(&self) -> (usize, u64) {
        let inner = self.inner.lock().expect("cache mutex poisoned");
        let done = inner
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Done { .. }))
            .count();
        (done, inner.done_bytes)
    }

    /// Looks a completed result up by its 16-hex textual address.
    /// A successful lookup counts as a cache hit.
    pub fn lookup(&self, key: &str) -> Option<Arc<CachedResult>> {
        let last_used = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("cache mutex poisoned");
        let canonical = inner.by_key.get(key)?.clone();
        match inner.slots.get_mut(&canonical) {
            Some(Slot::Done {
                result,
                last_used: lu,
            }) => {
                *lu = last_used;
                self.hits.inc();
                Some(Arc::clone(result))
            }
            _ => None,
        }
    }

    /// Returns the cached result for `canonical`, or runs `compute`
    /// exactly once across all concurrent callers of the same key
    /// (single-flight) and caches its output.
    ///
    /// # Errors
    ///
    /// The leader's computation error propagates verbatim to every
    /// coalesced caller (followers receive a clone, so a deadline-
    /// exceeded flight 504s identically for everyone); a failed flight
    /// leaves no cache entry behind, so the next request retries.
    pub fn get_or_compute<F>(
        &self,
        canonical: &str,
        compute: F,
    ) -> Result<(Arc<CachedResult>, CacheOutcome), ServiceError>
    where
        F: FnOnce() -> Result<CachedResult, ServiceError>,
    {
        let flight = {
            let last_used = self.clock.fetch_add(1, Ordering::Relaxed);
            let mut inner = self.inner.lock().expect("cache mutex poisoned");
            match inner.slots.get_mut(canonical) {
                Some(Slot::Done {
                    result,
                    last_used: lu,
                }) => {
                    *lu = last_used;
                    self.hits.inc();
                    return Ok((Arc::clone(result), CacheOutcome::Hit));
                }
                Some(Slot::InFlight(flight)) => {
                    // Follower: wait outside the cache lock.
                    let flight = Arc::clone(flight);
                    drop(inner);
                    self.hits.inc();
                    let mut done = flight.done.lock().expect("flight mutex poisoned");
                    while done.is_none() {
                        done = flight.cv.wait(done).expect("flight mutex poisoned");
                    }
                    return match done.as_ref().expect("loop exited on Some") {
                        Ok(result) => Ok((Arc::clone(result), CacheOutcome::Hit)),
                        Err(e) => Err(e.clone()),
                    };
                }
                None => {
                    let flight = Arc::new(Flight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    inner
                        .slots
                        .insert(canonical.to_owned(), Slot::InFlight(Arc::clone(&flight)));
                    flight
                }
            }
        };
        // Leader: compute outside the lock. A panicking computation
        // must not leak the in-flight slot — that would wedge the key
        // forever and strand every follower on the condvar (each one
        // permanently consuming a pooled worker thread) — so unwinds
        // are caught and published as an error like any other failure.
        self.misses.inc();
        self.computations.inc();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(compute))
            .unwrap_or_else(|panic| {
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                Err(ServiceError::Internal(format!(
                    "computation panicked: {message}"
                )))
            });
        // Persist a retained result *before* publishing it: anything a
        // client can observe as done is already durable (blob + journal
        // record, both fsync'd). Under `persist` so this completion
        // cannot overtake a pending eviction record for the same key.
        // A persist failure degrades durability only — the result still
        // serves from memory.
        if let (Ok(result), Some(store)) = (&outcome, self.store.get()) {
            if result.body.len() as u64 <= self.max_bytes {
                let _persist = self.persist.lock().expect("persist mutex poisoned");
                if let Err(e) = store.put_result(result) {
                    logging::warn(
                        "service::cache",
                        None,
                        "result not persisted; serving from memory only",
                        &[("error", FieldValue::Str(&e.to_string()))],
                    );
                }
            }
        }
        let last_used = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("cache mutex poisoned");
        let mut evicted = Vec::new();
        let published = match outcome {
            Ok(result) => {
                let result = Arc::new(result);
                if result.body.len() as u64 <= self.max_bytes {
                    evicted = self.retain_locked(&mut inner, canonical, &result, last_used);
                } else {
                    // Too big to retain: serve it, drop the flight slot.
                    inner.slots.remove(canonical);
                }
                Ok(result)
            }
            Err(e) => {
                inner.slots.remove(canonical);
                Err(e)
            }
        };
        // Journal evictions off the cache lock — lookups must not stall
        // behind journal fsyncs — but under `persist`, acquired before
        // `inner` is released, so a concurrent recomputation of an
        // evicted key cannot journal its completion first.
        let store = self.store.get();
        let persist = (store.is_some() && !evicted.is_empty())
            .then(|| self.persist.lock().expect("persist mutex poisoned"));
        drop(inner);
        if let Some(store) = store {
            for victim in &evicted {
                if let Err(e) = store.result_evicted(victim) {
                    logging::warn(
                        "service::cache",
                        None,
                        "eviction not journaled",
                        &[("error", FieldValue::Str(&e.to_string()))],
                    );
                }
            }
        }
        drop(persist);
        let mut done = flight.done.lock().expect("flight mutex poisoned");
        *done = Some(match &published {
            Ok(result) => Ok(Arc::clone(result)),
            Err(e) => Err(e.clone()),
        });
        drop(done);
        flight.cv.notify_all();
        published.map(|result| (result, CacheOutcome::Miss))
    }

    /// Evicts completed LRU entries until `result` fits, then inserts
    /// it as `Done`. Returns the evicted results so the caller can
    /// journal them *after* releasing the cache lock (a restart must
    /// not resurrect what the budget discarded, but the journal fsync
    /// must not run under `inner`).
    #[must_use]
    fn retain_locked(
        &self,
        inner: &mut Inner,
        canonical: &str,
        result: &Arc<CachedResult>,
        last_used: u64,
    ) -> Vec<Arc<CachedResult>> {
        let bytes = result.body.len() as u64;
        let mut evicted = Vec::new();
        while inner.done_bytes + bytes > self.max_bytes {
            let victim = inner
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Done { last_used, .. } => Some((*last_used, k.clone())),
                    Slot::InFlight(_) => None,
                })
                .min()
                .map(|(_, k)| k)
                .expect("done_bytes > 0 implies a Done slot");
            if let Some(Slot::Done { result, .. }) = inner.slots.remove(&victim) {
                inner.done_bytes -= result.body.len() as u64;
                inner.by_key.remove(&result_key(&result.canonical));
                evicted.push(result);
            }
        }
        inner.done_bytes += bytes;
        inner
            .by_key
            .insert(result_key(canonical), canonical.to_owned());
        inner.slots.insert(
            canonical.to_owned(),
            Slot::Done {
                result: Arc::clone(result),
                last_used,
            },
        );
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(canonical: &str, body: &[u8]) -> CachedResult {
        CachedResult {
            canonical: canonical.to_owned(),
            content_type: "text/csv",
            headers: vec![("x-mobipriv-seed", "1".to_owned())],
            body: body.to_vec(),
        }
    }

    #[test]
    fn hit_after_miss_and_lookup_by_textual_key() {
        let cache = ResultCache::new(1 << 20);
        let (first, outcome) = cache
            .get_or_compute("k1", || Ok(result("k1", b"abc")))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let (second, outcome) = cache
            .get_or_compute("k1", || panic!("must not recompute"))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(first.body, second.body);
        assert_eq!(cache.computations(), 1);
        assert_eq!(cache.hit_miss(), (1, 1));
        let looked = cache.lookup(&result_key("k1")).expect("addressable");
        assert_eq!(looked.body, b"abc");
        assert!(cache.lookup("ffffffffffffffff").is_none());
    }

    #[test]
    fn concurrent_identical_keys_coalesce_into_one_computation() {
        let cache = Arc::new(ResultCache::new(1 << 20));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let (r, _) = cache
                        .get_or_compute("shared", || {
                            // Widen the race window so followers really
                            // arrive while the leader is computing.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            Ok(result("shared", b"payload"))
                        })
                        .unwrap();
                    r.body.clone()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), b"payload");
        }
        assert_eq!(cache.computations(), 1, "single-flight violated");
    }

    #[test]
    fn panicking_leader_fails_followers_and_frees_the_key() {
        let cache = Arc::new(ResultCache::new(1 << 20));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let follower = {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Arrive while the leader is mid-panic-window; either
                // join the flight (error) or become a fresh leader (ok)
                // — both are fine, hanging is not.
                std::thread::sleep(std::time::Duration::from_millis(10));
                cache
                    .get_or_compute("boom", || Ok(result("boom", b"recovered")))
                    .map(|(r, _)| r.body.clone())
            })
        };
        barrier.wait();
        let err = cache
            .get_or_compute("boom", || -> Result<CachedResult, ServiceError> {
                std::thread::sleep(std::time::Duration::from_millis(30));
                panic!("mechanism exploded");
            })
            .unwrap_err();
        assert!(
            err.to_string().contains("panicked"),
            "leader error names the panic: {err}"
        );
        // The follower thread terminates (no condvar hang) either way.
        match follower.join().expect("follower thread finished") {
            Ok(body) => assert_eq!(body, b"recovered"),
            Err(e) => assert!(e.to_string().contains("panicked"), "{e}"),
        }
        // The key is not wedged: the next caller computes fresh.
        let (r, outcome) = cache
            .get_or_compute("boom", || Ok(result("boom", b"recovered")))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(r.body, b"recovered");
    }

    #[test]
    fn followers_observe_the_leaders_exact_error() {
        let cache = Arc::new(ResultCache::new(1 << 20));
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let leader = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache
                    .get_or_compute("dl", || {
                        entered_tx.send(()).unwrap();
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        Err::<CachedResult, _>(ServiceError::DeadlineExceeded(7))
                    })
                    .unwrap_err()
            })
        };
        entered_rx.recv().unwrap();
        // Joins the in-flight slot while the leader is still computing.
        let follower = cache.get_or_compute("dl", || Ok(result("dl", b"fresh")));
        let leader_err = leader.join().unwrap();
        assert!(matches!(leader_err, ServiceError::DeadlineExceeded(7)));
        match follower {
            // Normal timing: the follower coalesced and got a clone of
            // the leader's error, rendering byte-identically.
            Err(e) => {
                assert!(matches!(e, ServiceError::DeadlineExceeded(7)));
                assert_eq!(e.to_string(), leader_err.to_string());
            }
            // Exceptional timing (leader already finished): the key was
            // free again and the follower recomputed successfully.
            Ok((r, outcome)) => {
                assert_eq!(outcome, CacheOutcome::Miss);
                assert_eq!(r.body, b"fresh");
            }
        }
        // Either way the key is reusable afterwards.
        let (r, _) = cache
            .get_or_compute("dl", || Ok(result("dl", b"after")))
            .unwrap();
        assert!(!r.body.is_empty());
    }

    #[test]
    fn failures_propagate_and_leave_no_entry() {
        let cache = ResultCache::new(1 << 20);
        let err = cache
            .get_or_compute("bad", || {
                Err::<CachedResult, _>(ServiceError::Internal("boom".into()))
            })
            .unwrap_err();
        assert_eq!(err.status().0, 500);
        // The key retries (no poisoned entry).
        let (_, outcome) = cache
            .get_or_compute("bad", || Ok(result("bad", b"ok now")))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(cache.computations(), 2);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let cache = ResultCache::new(10);
        cache
            .get_or_compute("a", || Ok(result("a", b"aaaa")))
            .unwrap();
        cache
            .get_or_compute("b", || Ok(result("b", b"bbbb")))
            .unwrap();
        // Touch `a`, then insert `c`: `b` is the LRU victim.
        cache.get_or_compute("a", || panic!("cached")).unwrap();
        cache
            .get_or_compute("c", || Ok(result("c", b"cccc")))
            .unwrap();
        assert!(cache.lookup(&result_key("a")).is_some());
        assert!(cache.lookup(&result_key("b")).is_none(), "LRU evicted");
        assert!(cache.lookup(&result_key("c")).is_some());
        let (count, bytes) = cache.stats();
        assert_eq!(count, 2);
        assert!(bytes <= 10);
        // Oversized results are served but not retained.
        let (r, outcome) = cache
            .get_or_compute("huge", || Ok(result("huge", &[0u8; 64])))
            .unwrap();
        assert_eq!((r.body.len(), outcome), (64, CacheOutcome::Miss));
        assert!(cache.lookup(&result_key("huge")).is_none());
    }
}
