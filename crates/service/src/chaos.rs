//! Service-level fault injection: the chaos harness behind
//! `mobipriv-serve --chaos` / `MOBIPRIV_CHAOS`.
//!
//! PR 8's store-level `FaultInjector` proved the persistence layer
//! against torn writes; this module extends the idea up to the whole
//! request path. With chaos armed, every admitted compute first rolls
//! for three fault kinds:
//!
//! * **latency** — sleep a configured number of milliseconds (stage
//!   latency, exercises deadlines and the breaker's latency exposure);
//! * **error** — return a transient [`ServiceError::Internal`] (feeds
//!   the retry/backoff and breaker paths);
//! * **panic** — `panic!` inside the compute closure (exercises the
//!   single-flight panic containment and permit-drop accounting).
//!
//! Rolls are derived from `(config seed, FNV of the canonical key, a
//! per-injector counter)` through a SplitMix64 finalizer — never from
//! wall-clock randomness — so a soak is replayable in distribution.
//! The injector is **off by default** and carried per
//! [`AppState`](crate::AppState), not process-global: tests spawn many
//! servers per process and only the chaos-armed one must misbehave.
//!
//! What chaos must never violate (the `loadgen --chaos` soak asserts
//! these): no request hangs, no flight stays stuck, every response is
//! either byte-identical to the fault-free answer or a well-formed
//! error status, and the breaker re-closes once faults stop biting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use mobipriv_obs::metrics::{Counter, Registry};

use crate::ServiceError;

/// Probabilities and parameters for one chaos campaign. Parsed from the
/// `--chaos` flag / `MOBIPRIV_CHAOS` env spec, e.g.
/// `panic=0.05,error=0.05,latency=0.05,latency-ms=20,seed=1` or the
/// `all=0.05` shorthand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability an admitted compute panics.
    pub panic_p: f64,
    /// Probability an admitted compute fails with a transient error.
    pub error_p: f64,
    /// Probability an admitted compute is delayed by `latency_ms`.
    pub latency_p: f64,
    /// The injected delay.
    pub latency_ms: u64,
    /// Seed for the deterministic roll stream.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            panic_p: 0.0,
            error_p: 0.0,
            latency_p: 0.0,
            latency_ms: 20,
            seed: 0,
        }
    }
}

impl ChaosConfig {
    /// Parses a `key=value,…` spec. Keys: `panic`, `error`, `latency`
    /// (probabilities in `[0, 1]`), `all` (sets the three at once),
    /// `latency-ms`, `seed`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending token.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut cfg = ChaosConfig::default();
        for token in spec.split(',').filter(|t| !t.is_empty()) {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("chaos spec token `{token}` is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("chaos probability `{v}` is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("chaos probability `{v}` outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "panic" => cfg.panic_p = prob(value)?,
                "error" => cfg.error_p = prob(value)?,
                "latency" => cfg.latency_p = prob(value)?,
                "all" => {
                    let p = prob(value)?;
                    cfg.panic_p = p;
                    cfg.error_p = p;
                    cfg.latency_p = p;
                }
                "latency-ms" => {
                    cfg.latency_ms = value
                        .parse()
                        .map_err(|_| format!("chaos latency-ms `{value}` is not an integer"))?
                }
                "seed" => {
                    cfg.seed = value
                        .parse()
                        .map_err(|_| format!("chaos seed `{value}` is not an integer"))?
                }
                other => return Err(format!("unknown chaos key `{other}`")),
            }
        }
        Ok(cfg)
    }
}

/// The per-server injector. [`ChaosInjector::off`] (the default) makes
/// [`ChaosInjector::inject`] a no-op branch.
pub struct ChaosInjector {
    config: Option<ChaosConfig>,
    rolls: AtomicU64,
    injected_latency: Counter,
    injected_errors: Counter,
    injected_panics: Counter,
}

impl ChaosInjector {
    /// An armed (or disarmed, on `None`) injector.
    pub fn new(config: Option<ChaosConfig>) -> ChaosInjector {
        ChaosInjector {
            config,
            rolls: AtomicU64::new(0),
            injected_latency: Counter::new(),
            injected_errors: Counter::new(),
            injected_panics: Counter::new(),
        }
    }

    /// The disarmed injector.
    pub fn off() -> ChaosInjector {
        ChaosInjector::new(None)
    }

    /// Whether any fault kind has a nonzero probability.
    pub fn armed(&self) -> bool {
        self.config
            .map(|c| c.panic_p > 0.0 || c.error_p > 0.0 || c.latency_p > 0.0)
            .unwrap_or(false)
    }

    /// Exposes `mobipriv_chaos_injections_total{kind=…}` so soaks can
    /// assert faults actually fired (a chaos run that injected nothing
    /// proves nothing).
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter(
            "mobipriv_chaos_injections_total",
            &[("kind", "latency")],
            "Faults injected by the chaos harness, by kind",
            &self.injected_latency,
        );
        registry.register_counter(
            "mobipriv_chaos_injections_total",
            &[("kind", "error")],
            "Faults injected by the chaos harness, by kind",
            &self.injected_errors,
        );
        registry.register_counter(
            "mobipriv_chaos_injections_total",
            &[("kind", "panic")],
            "Faults injected by the chaos harness, by kind",
            &self.injected_panics,
        );
    }

    /// Rolls once for an admitted compute on `key`. Latency applies
    /// first (it can combine with either failure), then a transient
    /// error, then a panic.
    ///
    /// # Errors
    ///
    /// The injected transient fault, as `ServiceError::Internal` —
    /// exactly the class the retry and breaker paths treat as
    /// transient.
    ///
    /// # Panics
    ///
    /// Deliberately, when the panic roll hits: the caller's
    /// single-flight panic containment is part of what chaos tests.
    pub fn inject(&self, key: &str) -> Result<(), ServiceError> {
        let Some(config) = &self.config else {
            return Ok(());
        };
        let n = self.rolls.fetch_add(1, Ordering::Relaxed);
        let base =
            mix64(config.seed ^ fnv1a(key.as_bytes()) ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if unit(mix64(base ^ 1)) < config.latency_p {
            self.injected_latency.inc();
            std::thread::sleep(Duration::from_millis(config.latency_ms));
        }
        if unit(mix64(base ^ 2)) < config.error_p {
            self.injected_errors.inc();
            return Err(ServiceError::Internal(
                "chaos: injected transient fault".to_owned(),
            ));
        }
        if unit(mix64(base ^ 3)) < config.panic_p {
            self.injected_panics.inc();
            panic!("chaos: injected compute panic");
        }
        Ok(())
    }

    /// Total faults injected so far (all kinds).
    pub fn injected(&self) -> u64 {
        self.injected_latency.get() + self.injected_errors.get() + self.injected_panics.get()
    }
}

/// FNV-1a over `bytes` — the key half of the roll derivation (also the
/// jitter source for [`crate::jobs::backoff_ms`]).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// SplitMix64 finalizer.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a mixed word onto `[0, 1)` using its top 53 bits.
fn unit(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_and_shorthand_specs() {
        let cfg =
            ChaosConfig::parse("panic=0.01,error=0.02,latency=0.5,latency-ms=7,seed=9").unwrap();
        assert_eq!(cfg.panic_p, 0.01);
        assert_eq!(cfg.error_p, 0.02);
        assert_eq!(cfg.latency_p, 0.5);
        assert_eq!(cfg.latency_ms, 7);
        assert_eq!(cfg.seed, 9);
        let all = ChaosConfig::parse("all=0.05,seed=2").unwrap();
        assert_eq!(
            (all.panic_p, all.error_p, all.latency_p),
            (0.05, 0.05, 0.05)
        );
        assert!(ChaosConfig::parse("panic=2").is_err());
        assert!(ChaosConfig::parse("bogus=1").is_err());
        assert!(ChaosConfig::parse("panic").is_err());
    }

    #[test]
    fn disarmed_injector_is_a_no_op() {
        let injector = ChaosInjector::off();
        assert!(!injector.armed());
        for _ in 0..100 {
            injector.inject("k").unwrap();
        }
        assert_eq!(injector.injected(), 0);
    }

    #[test]
    fn error_probability_one_always_fails_transiently() {
        let injector = ChaosInjector::new(Some(ChaosConfig {
            error_p: 1.0,
            ..ChaosConfig::default()
        }));
        assert!(injector.armed());
        for _ in 0..10 {
            let err = injector.inject("k").unwrap_err();
            assert!(
                err.is_transient(),
                "injected faults must be retryable: {err}"
            );
        }
        assert_eq!(injector.injected(), 10);
    }

    #[test]
    fn injection_rate_tracks_the_configured_probability() {
        let injector = ChaosInjector::new(Some(ChaosConfig {
            error_p: 0.2,
            seed: 42,
            ..ChaosConfig::default()
        }));
        let failures = (0..2_000)
            .filter(|i| injector.inject(&format!("key-{i}")).is_err())
            .count();
        // 2000 rolls at p=0.2: expect ~400; a [300, 500] band is >6σ.
        assert!(
            (300..=500).contains(&failures),
            "injection rate off: {failures}/2000"
        );
    }

    #[test]
    #[should_panic(expected = "chaos: injected compute panic")]
    fn panic_probability_one_panics() {
        let injector = ChaosInjector::new(Some(ChaosConfig {
            panic_p: 1.0,
            ..ChaosConfig::default()
        }));
        let _ = injector.inject("k");
    }
}
