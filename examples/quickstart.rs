//! Quickstart: generate a workload, protect it with the paper's
//! two-step pipeline, and verify the privacy/utility trade-off.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mobipriv::attacks::PoiAttack;
use mobipriv::core::{Mechanism, MixZoneConfig, Pipeline};
use mobipriv::metrics::spatial;
use mobipriv::synth::scenarios;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic commuter town: 10 users, 3 days, one GPS trace per
    // trip session, with ground-truth visits attached.
    let town = scenarios::commuter_town(10, 3, 42);
    println!(
        "workload: {} users, {} session traces, {} fixes",
        town.dataset.users().len(),
        town.dataset.len(),
        town.dataset.total_fixes()
    );

    // The paper's mechanism: speed smoothing (α = 100 m) followed by
    // identifier swapping in natural mix-zones.
    let pipeline = Pipeline::new(100.0, MixZoneConfig::default())?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let (published, report) = pipeline.protect_with_report(&town.dataset, &mut rng);
    println!("\nmechanism: {}", pipeline.name());
    println!(
        "mix-zones: {}   swap events: {}   suppressed fixes: {:.2}%",
        report.zones.len(),
        report.swap_events,
        report.suppression_ratio() * 100.0
    );

    // Privacy: the POI-retrieval attack finds almost nothing.
    let attack = PoiAttack::default();
    let before = attack.run(&town.dataset, &town.truth);
    let after = attack.run(&published, &town.truth);
    println!(
        "\nPOI attack recall: raw {:.2} -> published {:.2}",
        before.overall.recall, after.overall.recall
    );

    // Utility: published points stay on the true paths (label-agnostic:
    // swapping relabels traces without moving them).
    let distortion = spatial::dataset_distortion_anonymous(&town.dataset, &published);
    println!(
        "spatial distortion: mean {:.2} m, p95 {:.2} m (location barely touched)",
        distortion.mean, distortion.p95
    );
    Ok(())
}
