//! The paper's Figure 1, end to end: two users whose trips cross at a
//! hub. Shows the raw traces, the speed-smoothed traces and the swap in
//! the mix-zone, with the tracking adversary's view of each stage.
//!
//! ```text
//! cargo run --release --example crossing_paths_swap
//! ```

use mobipriv::attacks::Tracker;
use mobipriv::core::{Mechanism, MixZoneConfig, MixZones, Promesse};
use mobipriv::synth::scenarios;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = scenarios::crossing_paths(1);
    println!("two users, each: 30-min stop -> transit through the hub -> 30-min stop\n");

    let tracker = Tracker::default();
    let raw_tracking = tracker.run(&out.dataset);
    println!(
        "(a) raw          : {} fixes, tracker continuity {:.2}, purity {:.2}",
        out.dataset.total_fixes(),
        raw_tracking.continuity,
        raw_tracking.purity
    );
    println!("    (purity 0.5 = the tracker already swaps targets at the natural crossing)");

    let promesse = Promesse::new(100.0)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let smoothed = promesse.protect(&out.dataset, &mut rng);
    println!(
        "(b) smoothed     : {} fixes at constant speed (stops erased)",
        smoothed.total_fixes()
    );

    let swapper = MixZones::new(MixZoneConfig::default())?;
    // Try seeds until the uniform permutation actually swaps (p = 1/2
    // per zone with two members), as in the figure.
    let (published, report) = (0..64)
        .map(|seed| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            swapper.protect_with_report(&smoothed, &mut rng)
        })
        .find(|(_, r)| r.swap_events > 0)
        .expect("some seed swaps");
    println!(
        "(c) swapped      : {} zone(s), {} fix(es) suppressed, {:.0}% of fixes relabelled",
        report.zones.len(),
        report.suppressed_fixes,
        report.mixed_fix_ratio() * 100.0
    );
    for zone in &report.zones {
        println!(
            "    zone at {} between t{} and t{}, members: {:?}",
            zone.center,
            zone.start.get(),
            zone.end.get(),
            zone.members
        );
    }

    let swapped_tracking = tracker.run(&published);
    println!(
        "\ntracker continuity: raw {:.2} -> published {:.2}",
        raw_tracking.continuity, swapped_tracking.continuity
    );
    println!("the suppressed zone breaks every track at the crossing, and the random");
    println!("relabelling means even a perfect tracker cannot tell which continuation");
    println!("belongs to which user — the figure's panel (c).");
    Ok(())
}
