//! Utility study: what an analyst keeps and loses under each mechanism.
//! Walks the three analyst workloads of the metrics crate — spatial
//! distortion, cell coverage/heat-maps and range queries — across the
//! paper's mechanism and the baselines.
//!
//! ```text
//! cargo run --release --example utility_study
//! ```

use mobipriv::core::{GeoInd, GridGeneralization, KDelta, Mechanism, Promesse};
use mobipriv::geo::Seconds;
use mobipriv::metrics::{coverage, queries, spatial, Table};
use mobipriv::synth::scenarios;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let town = scenarios::commuter_town(10, 2, 77);
    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(Promesse::new(100.0)?),
        Box::new(GeoInd::new(0.01)?),
        Box::new(KDelta::new(2, 500.0)?),
        Box::new(GridGeneralization::new(250.0)?),
    ];

    let mut table = Table::new(vec![
        "mechanism",
        "distortion(m)",
        "coverage-f1",
        "heat-cosine",
        "query-error",
    ]);
    for (i, mechanism) in mechanisms.iter().enumerate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(100 + i as u64);
        let published = mechanism.protect(&town.dataset, &mut rng);
        let distortion = spatial::dataset_distortion(&town.dataset, &published);
        let cov = coverage::coverage(&town.dataset, &published, 200.0);
        let mut qrng = rand::rngs::StdRng::seed_from_u64(5);
        let q = queries::query_error(
            &town.dataset,
            &published,
            100,
            200.0,
            Seconds::from_minutes(15.0),
            &mut qrng,
        );
        table.row(vec![
            mechanism.name(),
            Table::num(distortion.mean),
            Table::num(cov.f1),
            Table::num(cov.cosine),
            Table::num(q.mean_relative_error),
        ]);
    }
    println!("{table}");
    println!("reading guide:");
    println!("- promesse keeps geometry (distortion ≈ 0, coverage high) but shifts");
    println!("  time, so time-windowed counting queries degrade — the paper's stated");
    println!("  trade-off (\"not all queries can be implemented with our solution\");");
    println!("- geo-indistinguishability keeps timestamps but blurs geometry;");
    println!("- (k,δ) clustering suppresses and drags whole trajectories;");
    println!("- grid snapping quantizes everything coarsely.");
    Ok(())
}
