//! POI hiding on a commuter workload: compares what the POI-retrieval
//! adversary recovers from raw data, from geo-indistinguishable data and
//! from speed-smoothed data — the motivating comparison of the paper.
//!
//! ```text
//! cargo run --release --example commuter_poi_hiding
//! ```

use mobipriv::attacks::PoiAttack;
use mobipriv::core::{GeoInd, Mechanism, Promesse};
use mobipriv::metrics::Table;
use mobipriv::synth::scenarios;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let town = scenarios::commuter_town(12, 3, 2_024);
    println!(
        "workload: {} users / {} sessions / {} fixes; {} true visits\n",
        town.dataset.users().len(),
        town.dataset.len(),
        town.dataset.total_fixes(),
        town.truth.len()
    );

    let mut table = Table::new(vec!["mechanism", "recall", "precision", "f1"]);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    // Raw release: everything leaks.
    let raw = PoiAttack::default().run(&town.dataset, &town.truth);
    table.row(vec![
        "raw".into(),
        Table::num(raw.overall.recall),
        Table::num(raw.overall.precision),
        Table::num(raw.overall.f1),
    ]);

    // Geo-indistinguishability at a strong setting (E[noise] = 200 m):
    // the tuned adversary still finds the stops (the paper's ≥60% claim).
    let geoind = GeoInd::new(0.01)?;
    let noisy = geoind.protect(&town.dataset, &mut rng);
    let outcome = PoiAttack::tuned_for_noise(200.0).run(&noisy, &town.truth);
    table.row(vec![
        geoind.name(),
        Table::num(outcome.overall.recall),
        Table::num(outcome.overall.precision),
        Table::num(outcome.overall.f1),
    ]);

    // Speed smoothing: stops are geometrically erased.
    let promesse = Promesse::new(100.0)?;
    let smoothed = promesse.protect(&town.dataset, &mut rng);
    let outcome = PoiAttack::default().run(&smoothed, &town.truth);
    table.row(vec![
        promesse.name(),
        Table::num(outcome.overall.recall),
        Table::num(outcome.overall.precision),
        Table::num(outcome.overall.f1),
    ]);

    println!("{table}");
    println!("speed smoothing removes the stop clusters that both the raw and the");
    println!("noise-perturbed releases leak — location perturbation cannot, because");
    println!("a dwell cluster stays a cluster after i.i.d. noise.");
    Ok(())
}
