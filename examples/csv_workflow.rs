//! The adoption path for real data: read a CSV mobility dataset,
//! protect it with the paper's pipeline, write the publishable CSV
//! back out — plus the sanity numbers a data owner would check first.
//!
//! ```text
//! cargo run --release --example csv_workflow
//! ```

use mobipriv::core::{MixZoneConfig, Pipeline};
use mobipriv::model::{read_csv, write_csv};
use mobipriv::synth::scenarios;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stand-in for your raw export: serialize a synthetic workload to
    // CSV, exactly the 5-column format `read_csv` documents
    // (user,trace,lat,lng,time).
    let town = scenarios::commuter_town(6, 2, 11);
    let mut raw_csv = Vec::new();
    write_csv(&town.dataset, &mut raw_csv)?;
    println!(
        "raw export: {} bytes, {} rows",
        raw_csv.len(),
        raw_csv.iter().filter(|b| **b == b'\n').count() - 1
    );

    // A consumer (or this program) reads it back…
    let dataset = read_csv(raw_csv.as_slice())?;
    assert_eq!(dataset.total_fixes(), town.dataset.total_fixes());

    // …protects it…
    let pipeline = Pipeline::new(100.0, MixZoneConfig::default())?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let (published, report) = pipeline.protect_with_report(&dataset, &mut rng);
    println!(
        "protected: {} traces -> {} traces, {} zones, {:.2}% fixes suppressed",
        dataset.len(),
        published.len(),
        report.zones.len(),
        report.suppression_ratio() * 100.0
    );

    // …and writes the publishable file.
    let mut published_csv = Vec::new();
    write_csv(&published, &mut published_csv)?;
    println!("published export: {} bytes", published_csv.len());

    // Round-trip integrity of the published artifact.
    let reread = read_csv(published_csv.as_slice())?;
    assert_eq!(reread.total_fixes(), published.total_fixes());
    assert_eq!(reread.users(), published.users());
    println!("round trip: OK ({} fixes)", reread.total_fixes());
    Ok(())
}
