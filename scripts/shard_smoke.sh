#!/usr/bin/env bash
# Shard-router smoke test (used by CI and runnable locally after
# `cargo build --release -p mobipriv-service --bins`):
#
#   1. boots 4 single-node shards and a router over them, plus one
#      single-node reference server,
#   2. registers a dataset through the router and asserts the digest
#      matches the reference server's (content addressing is
#      deployment-independent),
#   3. asserts /v1/route names an owner and that a one-shot anonymize
#      and a full job cycle through the router return bytes identical
#      to the reference server's,
#   4. asserts the router folds /metrics (cluster totals + per-shard
#      route counters) and /v1/stats across shards,
#   5. runs a mixed loadgen workload (one-shot and --jobs, keep-alive)
#      through the router with zero failed requests, and asserts the
#      router actually reused connections,
#   6. kills the shard owning the first dataset and asserts: its key
#      range answers 503, a dataset owned by a surviving shard still
#      anonymizes byte-identically, stateless routes fail over, and
#      mobipriv_route_errors_total counts the dead shard,
#   7. kills everything on exit.
set -euo pipefail

BIN=${BIN:-target/release}
WORK=$(mktemp -d)
PIDS=()
trap 'kill "${PIDS[@]}" 2>/dev/null; rm -rf "$WORK"' EXIT

CURL="curl -fsS --max-time 20"

boot() { # boot <log> <extra args...> -> sets ADDR and PID, appends to PIDS
  local log=$1; shift
  "$BIN/mobipriv-serve" --addr 127.0.0.1:0 "$@" > "$log" 2>&1 &
  PID=$!
  disown "$PID" # no job-control "Killed" noise when the test shoots a shard
  PIDS+=("$PID")
  ADDR=""
  for _ in $(seq 100); do
    ADDR=$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log")
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  if [ -z "$ADDR" ]; then
    echo "server did not start:" >&2
    cat "$log" >&2
    exit 1
  fi
}

"$BIN/mobipriv-loadgen" --users 20 --seed 7 --dump-workload > "$WORK/body.csv"
echo "workload: $(wc -l < "$WORK/body.csv") CSV lines"

SHARDS=()
SHARD_PIDS=()
for i in 1 2 3 4; do
  boot "$WORK/shard$i.log" --workers 2
  SHARDS+=("$ADDR")
  SHARD_PIDS+=("$PID")
  echo "shard $i:  http://$ADDR (pid $PID)"
done
boot "$WORK/router.log" --workers 4 --route "$(IFS=,; echo "${SHARDS[*]}")"
ROUTER=$ADDR
echo "router:   http://$ROUTER (pid $PID)"
boot "$WORK/ref.log" --workers 2
REF=$ADDR
echo "ref:      http://$REF (pid $PID)"

$CURL "http://$ROUTER/healthz" | grep -q ready

# --- content addressing is deployment-independent --------------------------
DIGEST=$($CURL --data-binary @"$WORK/body.csv" "http://$ROUTER/v1/datasets" \
  | sed -n 's/.*"digest":"\([^"]*\)".*/\1/p')
REF_DIGEST=$($CURL --data-binary @"$WORK/body.csv" "http://$REF/v1/datasets" \
  | sed -n 's/.*"digest":"\([^"]*\)".*/\1/p')
[ -n "$DIGEST" ] && [ "$DIGEST" = "$REF_DIGEST" ]
echo "digest:   $DIGEST (router == reference)"

OWNER=$($CURL "http://$ROUTER/v1/route?key=$DIGEST" \
  | sed -n 's/.*"shard":"\([^"]*\)".*/\1/p')
[ -n "$OWNER" ]
echo "owner:    $OWNER"
# The owning shard has the dataset; the others must not (keyed placement).
$CURL "http://$OWNER/v1/datasets/$DIGEST" > /dev/null

# --- byte-identity with the single-node reference --------------------------
Q='mechanism=promesse&alpha=100&seed=42'
$CURL --data-binary @"$WORK/body.csv" "http://$ROUTER/v1/anonymize?$Q" > "$WORK/via_router.csv"
$CURL --data-binary @"$WORK/body.csv" "http://$REF/v1/anonymize?$Q" > "$WORK/via_ref.csv"
cmp "$WORK/via_router.csv" "$WORK/via_ref.csv"
echo "one-shot: byte-identical through router and reference"

job() { # job <base url> <out file>: submit, poll to done, fetch result
  local base=$1 out=$2 id="" status=""
  id=$($CURL -X POST "http://$base/v1/jobs?dataset=$DIGEST&mechanism=geoind&epsilon=0.01&seed=9" \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
  [ -n "$id" ]
  for _ in $(seq 100); do
    status=$($CURL "http://$base/v1/jobs/$id" | sed -n 's/.*"status":"\([^"]*\)".*/\1/p')
    [ "$status" = done ] && break
    [ "$status" = failed ] && { echo "job failed on $base" >&2; exit 1; }
    sleep 0.1
  done
  [ "$status" = done ]
  $CURL "http://$base/v1/results/$id" > "$out"
}
job "$ROUTER" "$WORK/job_router.csv"
job "$REF" "$WORK/job_ref.csv"
cmp "$WORK/job_router.csv" "$WORK/job_ref.csv"
echo "jobs:     submit/poll/fetch byte-identical through router and reference"

# --- folded observability --------------------------------------------------
$CURL "http://$ROUTER/metrics" > "$WORK/metrics.txt"
grep -q 'mobipriv_route_requests_total{shard="' "$WORK/metrics.txt"
grep -q '^mobipriv_http_requests_total' "$WORK/metrics.txt"
$CURL "http://$ROUTER/v1/stats" | python3 -m json.tool > /dev/null
echo "fold:     /metrics and /v1/stats aggregate across shards"

# --- mixed workload through the router, keep-alive -------------------------
# (loadgen exits nonzero if any request failed; set -e turns that into
# a smoke failure with the summary on stderr)
"$BIN/mobipriv-loadgen" --addr "$ROUTER" --users 20 --seed 7 \
  --requests 24 --concurrency 4 --keep-alive > "$WORK/loadgen_oneshot.txt" || {
  cat "$WORK/loadgen_oneshot.txt" >&2; exit 1; }
grep -q '% reused' "$WORK/loadgen_oneshot.txt"
"$BIN/mobipriv-loadgen" --addr "$ROUTER" --users 20 --seed 7 --jobs --distinct 4 \
  --requests 24 --concurrency 4 --keep-alive > "$WORK/loadgen_jobs.txt" || {
  cat "$WORK/loadgen_jobs.txt" >&2; exit 1; }
echo "loadgen:  one-shot + jobs through the router, zero failures, reuse confirmed"

# --- degradation: kill the owner, other key ranges keep serving ------------
# Find a second dataset owned by a *different* shard (register through
# the router until placement lands elsewhere).
OTHER_DIGEST=""
for seed in $(seq 11 40); do
  "$BIN/mobipriv-loadgen" --users 10 --seed "$seed" --dump-workload > "$WORK/other.csv"
  D=$($CURL --data-binary @"$WORK/other.csv" "http://$ROUTER/v1/datasets" \
    | sed -n 's/.*"digest":"\([^"]*\)".*/\1/p')
  O=$($CURL "http://$ROUTER/v1/route?key=$D" | sed -n 's/.*"shard":"\([^"]*\)".*/\1/p')
  if [ "$O" != "$OWNER" ]; then OTHER_DIGEST=$D; break; fi
done
[ -n "$OTHER_DIGEST" ]
$CURL --data-binary @"$WORK/other.csv" "http://$REF/v1/anonymize?$Q" > "$WORK/other_ref.csv"

for i in 0 1 2 3; do
  if [ "${SHARDS[$i]}" = "$OWNER" ]; then
    kill -9 "${SHARD_PIDS[$i]}"
    echo "killed:   shard ${SHARDS[$i]} (owner of $DIGEST)"
  fi
done
sleep 0.3

# The dead shard's key range degrades to 503…
STATUS=$(curl -s -o /dev/null --max-time 20 -w '%{http_code}' "http://$ROUTER/v1/datasets/$DIGEST")
[ "$STATUS" = 503 ]
# …while other key ranges keep serving byte-identically…
$CURL --data-binary @"$WORK/other.csv" "http://$ROUTER/v1/anonymize?$Q" > "$WORK/other_router.csv"
cmp "$WORK/other_router.csv" "$WORK/other_ref.csv"
# …stateless routes fail over to surviving shards…
$CURL "http://$ROUTER/v1/mechanisms" | grep -q promesse
# …health reports the degradation, and the route errors are counted.
curl -fsS --max-time 20 "http://$ROUTER/healthz" | grep -q degraded
$CURL "http://$ROUTER/metrics" | grep "mobipriv_route_errors_total{shard=\"$OWNER\"}" \
  | grep -qv ' 0$'
echo "degrade:  dead shard 503s its range, others serve, errors counted"

echo "shard smoke OK"
