#!/usr/bin/env python3
"""Perf-trend gate: compare a regenerated BENCH_perf.json against the
committed baseline and fail when any path's *speedup ratio* regresses
below a floor fraction of the committed value.

Ratios (naive/indexed, cold/warm) divide out machine speed, so the gate
catches accidental de-indexing or cache-bypassing without flaking on
slow or noisy CI runners the way absolute-time gates do.

The jobs_cache section is gated differently: its cold side is
CPU-bound (parse + compute) while its warm side is bounded by loopback
round trips, so the cold/warm ratio scales with machine shape and a
committed-ratio gate would flake on faster runners. It gets an
*absolute* floor instead (default 10x, the PR 5 acceptance threshold):
any machine that skips the upload + parse + compute on a warm hit
clears it by an order of magnitude.

usage: perf_trend.py BASELINE NEW [--floor=0.6] [--jobs-floor=10]

Exit status: 0 = no regression, 1 = regression (or a baseline path
missing from the regenerated file), 2 = usage/parse error.
"""

import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_trend: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main(argv):
    args = [a for a in argv if not a.startswith("--")]
    floor = 0.6
    jobs_floor = 10.0
    for a in argv:
        if a.startswith("--floor="):
            floor = float(a.split("=", 1)[1])
        if a.startswith("--jobs-floor="):
            jobs_floor = float(a.split("=", 1)[1])
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline, fresh = load(args[0]), load(args[1])

    def speedups(doc):
        return {p["name"]: p["speedup"] for p in doc.get("paths", [])}

    base, new = speedups(baseline), speedups(fresh)
    if not base:
        print("perf_trend: baseline has no paths", file=sys.stderr)
        return 2

    failed = False
    print(f"{'path':>16} {'committed':>10} {'regenerated':>11} {'ratio':>7}  gate (>= {floor:.2f})")
    for name, committed in sorted(base.items()):
        got = new.get(name)
        if got is None:
            print(f"{name:>16} {committed:>10.2f} {'MISSING':>11}      -  FAIL")
            failed = True
            continue
        ratio = got / committed
        verdict = "ok" if ratio >= floor else "FAIL"
        failed = failed or ratio < floor
        print(f"{name:>16} {committed:>10.2f}x {got:>10.2f}x {ratio:>6.2f}  {verdict}")
    for name in sorted(set(new) - set(base)):
        print(f"{name:>16} {'(new)':>10} {new[name]:>10.2f}x      -  ok (no baseline)")

    # jobs_cache: absolute floor (machine-shape-independent, see above).
    jobs = fresh.get("jobs_cache")
    if jobs is None:
        print(f"{'jobs_cache':>16} {'-':>10} {'MISSING':>11}      -  FAIL")
        failed = True
    else:
        got = jobs["speedup"]
        verdict = "ok" if got >= jobs_floor else "FAIL"
        failed = failed or got < jobs_floor
        print(f"{'jobs_cache':>16} {'(abs)':>10} {got:>10.2f}x      -  {verdict} (>= {jobs_floor:.0f}x cold/warm)")

    if failed:
        print(
            "perf_trend: speedup regression — a spatial index or the result cache "
            "stopped engaging (see DESIGN.md §9/§10). If the change is intentional, "
            "regenerate BENCH_perf.json with: "
            "cargo run --release -p mobipriv-bench --bin mobipriv-bench-perf -- "
            "--users 1000 --out BENCH_perf.json",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
