#!/usr/bin/env python3
"""Perf-trend gate: compare a regenerated BENCH_perf.json against the
committed baseline and fail when any path's *speedup ratio* regresses
below a floor fraction of the committed value.

Ratios (naive/indexed, cold/warm) divide out machine speed, so the gate
catches accidental de-indexing or cache-bypassing without flaking on
slow or noisy CI runners the way absolute-time gates do.

The jobs_cache section is gated differently: its cold side is
CPU-bound (parse + compute) while its warm side is bounded by loopback
round trips, so the cold/warm ratio scales with machine shape and a
committed-ratio gate would flake on faster runners. It gets an
*absolute* floor instead (default 10x, the PR 5 acceptance threshold):
any machine that skips the upload + parse + compute on a warm hit
clears it by an order of magnitude.

The parse section is likewise gated on a machine-independent ratio:
binary read throughput must stay at least `--bin-floor` (default 3x)
times CSV read throughput — the wire format's reason to exist — rather
than on absolute Mfix/s, which scales with the runner.

The layout section (AoS vs SoA speedups) is gated exactly like paths
(committed-ratio floor), plus a hard floor on the reident entry
(`--reident-floor`, default 1.01): the column-oriented profile scan
must keep beating the pre-columnar implementation, not slide back to
the historical ~1.01x plateau. The same hard floor applies to the
reident paths entry.

The obs_overhead section is an absolute ceiling (`--obs-ceiling`,
default 1.05): the engine run with observability hooks enabled must
stay within 5% of the run with them disabled — the zero-cost-when-idle
contract of the metrics/tracing layer, measured as a min-of-N ratio so
it divides out machine speed.

The resilience section shares the obs ceiling: the engine run through
`try_protect` with a live deadline token (a clock read between
per-trace kernels) must stay within 5% of the plain `protect` path —
cancellation support must be free when the deadline is generous.

The persistence section is an absolute ceiling on `restart_ratio`
(`--restart-ceiling`, default 2.0): a warm-restart cache hit — served
from state recovered off the journal at boot — must stay within 2x of
the in-memory warm hit on the same machine. Both sides are loopback
round trips against the same server build, so the ratio divides out
machine speed; a blowout means the recovered path re-reads disk or
recomputes on the request path.

The keepalive section is an absolute floor (`--keepalive-floor`,
default 1.5) on the fresh-connection/reused-connection warm RTT ratio:
reusing a keep-alive connection must stay meaningfully faster than
dialing per request. It is only gated when the bench machine has >= 2
cores — on one core the round trip is context-switch-bound on both
sides, which genuinely compresses the ratio toward 1 regardless of the
transport's health (the recorded `cores` field makes the run
self-describing).

The sharding section is an absolute floor (`--sharding-floor`, default
1.5) on the N=4-shards/N=1-node aggregate-throughput ratio, under the
same >= 2 cores guard: four one-worker shards behind the router cannot
physically outrun one one-worker node when every worker shares a
single core, so a one-core gate would only measure the proxy overhead.

usage: perf_trend.py BASELINE NEW [--floor=0.6] [--jobs-floor=10]
                     [--bin-floor=3] [--reident-floor=1.01]
                     [--obs-ceiling=1.05] [--restart-ceiling=2.0]
                     [--keepalive-floor=1.5] [--sharding-floor=1.5]

Exit status: 0 = no regression, 1 = regression (or a baseline path
missing from the regenerated file), 2 = usage/parse error.
"""

import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_trend: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main(argv):
    args = [a for a in argv if not a.startswith("--")]
    floor = 0.6
    jobs_floor = 10.0
    bin_floor = 3.0
    reident_floor = 1.01
    obs_ceiling = 1.05
    restart_ceiling = 2.0
    keepalive_floor = 1.5
    sharding_floor = 1.5
    for a in argv:
        if a.startswith("--floor="):
            floor = float(a.split("=", 1)[1])
        if a.startswith("--jobs-floor="):
            jobs_floor = float(a.split("=", 1)[1])
        if a.startswith("--bin-floor="):
            bin_floor = float(a.split("=", 1)[1])
        if a.startswith("--reident-floor="):
            reident_floor = float(a.split("=", 1)[1])
        if a.startswith("--obs-ceiling="):
            obs_ceiling = float(a.split("=", 1)[1])
        if a.startswith("--restart-ceiling="):
            restart_ceiling = float(a.split("=", 1)[1])
        if a.startswith("--keepalive-floor="):
            keepalive_floor = float(a.split("=", 1)[1])
        if a.startswith("--sharding-floor="):
            sharding_floor = float(a.split("=", 1)[1])
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline, fresh = load(args[0]), load(args[1])

    def speedups(doc):
        return {p["name"]: p["speedup"] for p in doc.get("paths", [])}

    base, new = speedups(baseline), speedups(fresh)
    if not base:
        print("perf_trend: baseline has no paths", file=sys.stderr)
        return 2

    failed = False
    print(f"{'path':>16} {'committed':>10} {'regenerated':>11} {'ratio':>7}  gate (>= {floor:.2f})")
    for name, committed in sorted(base.items()):
        got = new.get(name)
        if got is None:
            print(f"{name:>16} {committed:>10.2f} {'MISSING':>11}      -  FAIL")
            failed = True
            continue
        ratio = got / committed
        verdict = "ok" if ratio >= floor else "FAIL"
        failed = failed or ratio < floor
        print(f"{name:>16} {committed:>10.2f}x {got:>10.2f}x {ratio:>6.2f}  {verdict}")
    for name in sorted(set(new) - set(base)):
        print(f"{name:>16} {'(new)':>10} {new[name]:>10.2f}x      -  ok (no baseline)")

    # layout: AoS-vs-SoA speedups, gated like paths, with the hard
    # reident floor on top (see module docstring).
    def layouts(doc):
        return {p["name"]: p["speedup"] for p in doc.get("layout", [])}

    base_layout, new_layout = layouts(baseline), layouts(fresh)
    for name, committed in sorted(base_layout.items()):
        got = new_layout.get(name)
        if got is None:
            print(f"{name:>16} {committed:>10.2f} {'MISSING':>11}      -  FAIL (layout)")
            failed = True
            continue
        ratio = got / committed
        verdict = "ok" if ratio >= floor else "FAIL"
        failed = failed or ratio < floor
        print(f"{name:>16} {committed:>10.2f}x {got:>10.2f}x {ratio:>6.2f}  {verdict} (layout)")
    for name in sorted(set(new_layout) - set(base_layout)):
        print(f"{name:>16} {'(new)':>10} {new_layout[name]:>10.2f}x      -  ok (layout, no baseline)")
    for label, got in (("paths", new.get("reident")), ("layout", new_layout.get("reident"))):
        if got is not None:
            verdict = "ok" if got > reident_floor else "FAIL"
            failed = failed or got <= reident_floor
            print(
                f"{'reident':>16} {'(abs)':>10} {got:>10.2f}x      -  "
                f"{verdict} ({label} > {reident_floor:.2f}x plateau)"
            )

    # parse: gate the bin-vs-csv read-throughput ratio, not absolute
    # Mfix/s (see module docstring).
    parse = {p["name"]: p for p in fresh.get("parse", [])}
    base_parse = {p["name"]: p for p in baseline.get("parse", [])}
    for name in sorted(set(base_parse) - set(parse)):
        print(f"{name:>16} {'-':>10} {'MISSING':>11}      -  FAIL (parse)")
        failed = True
    if "bin" in parse and "csv" in parse:
        got = parse["bin"]["read_mfix_s"] / parse["csv"]["read_mfix_s"]
        verdict = "ok" if got >= bin_floor else "FAIL"
        failed = failed or got < bin_floor
        print(
            f"{'parse bin/csv':>16} {'(abs)':>10} {got:>10.2f}x      -  "
            f"{verdict} (>= {bin_floor:.0f}x read throughput)"
        )
    elif base_parse:
        print(f"{'parse bin/csv':>16} {'-':>10} {'MISSING':>11}      -  FAIL (parse)")
        failed = True

    # jobs_cache: absolute floor (machine-shape-independent, see above).
    jobs = fresh.get("jobs_cache")
    if jobs is None:
        print(f"{'jobs_cache':>16} {'-':>10} {'MISSING':>11}      -  FAIL")
        failed = True
    else:
        got = jobs["speedup"]
        verdict = "ok" if got >= jobs_floor else "FAIL"
        failed = failed or got < jobs_floor
        print(f"{'jobs_cache':>16} {'(abs)':>10} {got:>10.2f}x      -  {verdict} (>= {jobs_floor:.0f}x cold/warm)")

    # obs_overhead: absolute ceiling on the enabled/disabled engine-run
    # ratio (the zero-cost-when-idle contract, see module docstring).
    obs = fresh.get("obs_overhead")
    if obs is None:
        print(f"{'obs_overhead':>16} {'-':>10} {'MISSING':>11}      -  FAIL")
        failed = True
    else:
        got = obs["ratio"]
        verdict = "ok" if got <= obs_ceiling else "FAIL"
        failed = failed or got > obs_ceiling
        print(
            f"{'obs_overhead':>16} {'(abs)':>10} {got:>10.3f}x      -  "
            f"{verdict} (<= {obs_ceiling:.2f}x with hooks enabled)"
        )

    # persistence: absolute ceiling on the warm-restart/in-memory hit
    # ratio (see module docstring). Only gated when the baseline has the
    # section, so older baselines don't fail on the new bench.
    persist = fresh.get("persistence")
    if persist is None:
        if baseline.get("persistence") is not None:
            print(f"{'persistence':>16} {'-':>10} {'MISSING':>11}      -  FAIL")
            failed = True
    else:
        got = persist["restart_ratio"]
        verdict = "ok" if got <= restart_ceiling else "FAIL"
        failed = failed or got > restart_ceiling
        print(
            f"{'persistence':>16} {'(abs)':>10} {got:>10.2f}x      -  "
            f"{verdict} (warm-restart hit <= {restart_ceiling:.1f}x in-memory hit)"
        )

    # resilience: absolute ceiling on the deadline-token/no-token engine
    # run (cancellation hooks must be free when the budget is generous).
    # Shares the obs ceiling; only gated when the baseline has the
    # section, so older baselines don't fail on the new bench.
    resilience = fresh.get("resilience")
    if resilience is None:
        if baseline.get("resilience") is not None:
            print(f"{'resilience':>16} {'-':>10} {'MISSING':>11}      -  FAIL")
            failed = True
    else:
        got = resilience["ratio"]
        verdict = "ok" if got <= obs_ceiling else "FAIL"
        failed = failed or got > obs_ceiling
        print(
            f"{'resilience':>16} {'(abs)':>10} {got:>10.3f}x      -  "
            f"{verdict} (<= {obs_ceiling:.2f}x with a live deadline token)"
        )

    # keepalive / sharding: absolute floors on the connection-layer and
    # scale-out ratios, gated only on >= 2 cores (see module
    # docstring). Only required when the baseline has the section, so
    # older baselines don't fail on the new bench.
    for section, floor_value, what in (
        ("keepalive", keepalive_floor, "reused vs fresh-conn warm RTT"),
        ("sharding", sharding_floor, "4 shards vs 1 node throughput"),
    ):
        doc = fresh.get(section)
        if doc is None:
            if baseline.get(section) is not None:
                print(f"{section:>16} {'-':>10} {'MISSING':>11}      -  FAIL")
                failed = True
            continue
        got = doc["speedup"]
        cores = doc.get("cores", 1)
        if cores < 2:
            print(
                f"{section:>16} {'(abs)':>10} {got:>10.2f}x      -  "
                f"skipped ({cores} core, {what} needs >= 2)"
            )
            continue
        verdict = "ok" if got >= floor_value else "FAIL"
        failed = failed or got < floor_value
        print(
            f"{section:>16} {'(abs)':>10} {got:>10.2f}x      -  "
            f"{verdict} (>= {floor_value:.1f}x {what})"
        )

    if failed:
        print(
            "perf_trend: speedup regression — a spatial index or the result cache "
            "stopped engaging (see DESIGN.md §9/§10). If the change is intentional, "
            "regenerate BENCH_perf.json with: "
            "cargo run --release -p mobipriv-bench --bin mobipriv-bench-perf -- "
            "--users 1000 --out BENCH_perf.json",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
