#!/usr/bin/env bash
# Chaos smoke test (used by CI and runnable locally after
# `cargo build --release -p mobipriv-service --bins`):
#
#   1. boots mobipriv-serve with the fault injector armed
#      (panic/error/latency at p=0.05, deterministic seed) and a
#      twitchy circuit breaker (threshold 3, 200 ms open window),
#   2. runs `mobipriv-loadgen --chaos` — ≥500 mixed one-shot / job /
#      deadline-probe requests that assert the failure-domain
#      invariants: no hangs, no stuck single-flight keys, every
#      response byte-identical to the fault-free answer or a
#      well-formed error (408/500/503/504), and the breaker re-closes
#      after the storm,
#   3. asserts the server survived the soak (its /healthz is `ready`
#      again) and that the new resilience counters moved,
#   4. kills the server on exit.
set -euo pipefail

BIN=${BIN:-target/release}
WORK=$(mktemp -d)
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

"$BIN/mobipriv-serve" --addr 127.0.0.1:0 --workers 4 \
  --chaos all=0.05,latency-ms=5,seed=1 \
  --breaker-threshold 3 --breaker-open-ms 200 --max-attempts 3 \
  > "$WORK/serve.log" 2>&1 &
SERVER_PID=$!
ADDR=""
for _ in $(seq 100); do
  ADDR=$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$WORK/serve.log")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "server did not start:" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi
grep -q 'CHAOS ARMED' "$WORK/serve.log" || {
  echo "FAIL server did not announce the armed injector:" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}
echo "server:   http://$ADDR (pid $SERVER_PID, chaos armed)"

# The soak asserts its own invariants and exits 1 on any violation;
# --timeout bounds every read so a hang fails fast instead of wedging
# the CI job.
# 32 distinct keys keep a steady stream of cold computes flowing past
# the injector (with few keys everything is a cache hit after warmup
# and chaos has nothing to bite).
"$BIN/mobipriv-loadgen" --addr "$ADDR" --users 20 --seed 7 \
  --requests 500 --distinct 32 --concurrency 8 --timeout 60 \
  --mechanism promesse --query 'alpha=100' --chaos \
  | tee "$WORK/loadgen.out" || {
  echo "FAIL chaos soak reported invariant violations" >&2
  exit 1
}
grep -q 'every invariant held' "$WORK/loadgen.out" || {
  echo "FAIL soak did not confirm its invariants:" >&2
  cat "$WORK/loadgen.out" >&2
  exit 1
}

# The server outlived the storm and recovered: liveness stays 200 and
# the readiness body is back to `ready` (the soak already waited for
# the breaker gauge to read closed).
HEALTH=$(curl -fsS "http://$ADDR/healthz")
if [ "$HEALTH" != "ready" ]; then
  echo "FAIL post-soak /healthz says '$HEALTH', expected 'ready'" >&2
  exit 1
fi
echo "ok        post-soak /healthz ready"

# The resilience counters must exist and the injector must have bitten.
curl -fsS "http://$ADDR/metrics" > "$WORK/metrics.txt"
for METRIC in \
  mobipriv_retries_total \
  mobipriv_deadline_exceeded_total \
  mobipriv_client_timeouts_total \
  mobipriv_breaker_state
do
  grep -q "^$METRIC" "$WORK/metrics.txt" || {
    echo "FAIL /metrics lacks $METRIC" >&2
    exit 1
  }
done
awk '$1 ~ /^mobipriv_chaos_injections_total/ { sum += $2 } END { exit !(sum > 0) }' \
  "$WORK/metrics.txt" || {
  echo "FAIL chaos injected nothing — the soak proved nothing" >&2
  exit 1
}
echo "ok        resilience counters present, injections > 0"

echo "chaos smoke passed"
