#!/usr/bin/env bash
# Service smoke test (used by CI and runnable locally after
# `cargo build --release -p mobipriv-service --bins`):
#
#   1. boots mobipriv-serve on an ephemeral port,
#   2. POSTs a small synthetic dataset through each per-trace mechanism,
#   3. asserts HTTP 200 + parseable CSV back,
#   4. GETs /v1/evaluate matrix cells and asserts parseable JSON back,
#   5. exercises the registry + job engine end to end: register a
#      dataset, submit two identical jobs concurrently, poll to done,
#      assert both result bodies are byte-identical, assert repeat
#      requests are cache hits (x-mobipriv-cache) with zero failures,
#   6. runs loadgen --jobs and asserts zero failed requests,
#   7. scrapes GET /metrics and asserts the run moved the request,
#      cache and job counters (and that no job failed),
#   8. boots a second server with --data-dir, runs a job, kill -9s it,
#      restarts on the same directory and asserts the registered
#      dataset resolves and the finished result comes back
#      byte-identical as an x-mobipriv-cache hit (no recomputation),
#   9. kills the servers on exit.
set -euo pipefail

BIN=${BIN:-target/release}
WORK=$(mktemp -d)
SERVER_PID=""
SERVER2_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; [ -n "$SERVER2_PID" ] && kill -9 "$SERVER2_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

"$BIN/mobipriv-loadgen" --users 20 --seed 7 --dump-workload > "$WORK/body.csv"
echo "workload: $(wc -l < "$WORK/body.csv") CSV lines"

"$BIN/mobipriv-serve" --addr 127.0.0.1:0 --workers 2 > "$WORK/serve.log" 2>&1 &
SERVER_PID=$!
ADDR=""
for _ in $(seq 100); do
  ADDR=$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$WORK/serve.log")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "server did not start:" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi
echo "server:   http://$ADDR (pid $SERVER_PID)"

curl -fsS "http://$ADDR/healthz" > /dev/null
curl -fsS "http://$ADDR/v1/mechanisms" | grep -q promesse

# Every per-trace mechanism of the catalogue (GET /v1/mechanisms).
for Q in \
  'mechanism=raw' \
  'mechanism=pseudonymize' \
  'mechanism=pseudonymize&per=trace' \
  'mechanism=promesse&alpha=100' \
  'mechanism=geoind&epsilon=0.01'
do
  STATUS=$(curl -s -o "$WORK/out.csv" -w '%{http_code}' \
    --data-binary @"$WORK/body.csv" \
    "http://$ADDR/v1/anonymize?$Q&seed=42")
  if [ "$STATUS" != 200 ]; then
    echo "FAIL $Q -> HTTP $STATUS" >&2
    cat "$WORK/out.csv" >&2
    exit 1
  fi
  head -1 "$WORK/out.csv" | grep -q '^user,trace,lat,lng,time$' || {
    echo "FAIL $Q: response is not CSV" >&2
    exit 1
  }
  awk -F, 'NR > 1 && NF != 5 { exit 1 }' "$WORK/out.csv" || {
    echo "FAIL $Q: malformed CSV row" >&2
    exit 1
  }
  echo "ok        $Q ($(wc -l < "$WORK/out.csv") lines back)"
done

# The evaluation matrix endpoint: one filtered cell per scenario family
# must come back as 200 + parseable schema-versioned JSON.
for Q in \
  'scenario=crossing_paths&mechanism=promesse_a100' \
  'scenario=crossing_paths&mechanism=raw&seed=7' \
  'scenario=random_walkers&mechanism=geoind_e0.01'
do
  STATUS=$(curl -s -o "$WORK/eval.json" -w '%{http_code}' \
    "http://$ADDR/v1/evaluate?$Q")
  if [ "$STATUS" != 200 ]; then
    echo "FAIL /v1/evaluate?$Q -> HTTP $STATUS" >&2
    cat "$WORK/eval.json" >&2
    exit 1
  fi
  if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "$WORK/eval.json" > /dev/null || {
      echo "FAIL /v1/evaluate?$Q: response is not valid JSON" >&2
      head -c 400 "$WORK/eval.json" >&2
      exit 1
    }
  fi
  grep -q '"schema_version":1' "$WORK/eval.json" || {
    echo "FAIL /v1/evaluate?$Q: schema_version missing" >&2
    exit 1
  }
  grep -q '"digest":"' "$WORK/eval.json" || {
    echo "FAIL /v1/evaluate?$Q: no cell digest in report" >&2
    exit 1
  }
  echo "ok        /v1/evaluate?$Q ($(wc -c < "$WORK/eval.json") bytes back)"
done

# Bad parameters must 400, not 500.
STATUS=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/evaluate?scenario=atlantis")
if [ "$STATUS" != 400 ]; then
  echo "FAIL /v1/evaluate?scenario=atlantis -> HTTP $STATUS (expected 400)" >&2
  exit 1
fi
echo "ok        /v1/evaluate rejects unknown scenario with 400"

# ---- registry + job engine --------------------------------------------

# Register the dataset once; the digest is its content address.
curl -fsS --data-binary @"$WORK/body.csv" "http://$ADDR/v1/datasets" > "$WORK/register.json"
DIGEST=$(sed -n 's/.*"digest":"\([0-9a-f]\{16\}\)".*/\1/p' "$WORK/register.json")
if [ -z "$DIGEST" ]; then
  echo "FAIL /v1/datasets returned no digest:" >&2
  cat "$WORK/register.json" >&2
  exit 1
fi
echo "ok        /v1/datasets registered digest $DIGEST"

# Re-upload is idempotent.
curl -fsS --data-binary @"$WORK/body.csv" "http://$ADDR/v1/datasets" \
  | grep -q '"registered":"exists"' || {
  echo "FAIL re-upload was not idempotent" >&2
  exit 1
}
echo "ok        /v1/datasets re-upload reports exists"

# Two identical jobs submitted concurrently must be one job.
JOB_Q="dataset=$DIGEST&mechanism=promesse&alpha=100&seed=5"
curl -s -X POST "http://$ADDR/v1/jobs?$JOB_Q" -o "$WORK/job1.json" &
PID1=$!
curl -s -X POST "http://$ADDR/v1/jobs?$JOB_Q" -o "$WORK/job2.json" &
PID2=$!
wait "$PID1" "$PID2"
ID1=$(sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p' "$WORK/job1.json")
ID2=$(sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p' "$WORK/job2.json")
if [ -z "$ID1" ] || [ "$ID1" != "$ID2" ]; then
  echo "FAIL concurrent identical submissions got ids '$ID1' vs '$ID2'" >&2
  cat "$WORK/job1.json" "$WORK/job2.json" >&2
  exit 1
fi
echo "ok        concurrent identical submissions coalesced onto job $ID1"

# Poll to done.
for _ in $(seq 100); do
  curl -fsS "http://$ADDR/v1/jobs/$ID1" > "$WORK/job_status.json"
  grep -q '"status":"done"' "$WORK/job_status.json" && break
  grep -q '"status":"failed"' "$WORK/job_status.json" && {
    echo "FAIL job failed:" >&2
    cat "$WORK/job_status.json" >&2
    exit 1
  }
  sleep 0.1
done
grep -q '"status":"done"' "$WORK/job_status.json" || {
  echo "FAIL job never reached done:" >&2
  cat "$WORK/job_status.json" >&2
  exit 1
}
echo "ok        job $ID1 polled to done"

# Both fetches serve byte-identical bodies, marked as cache hits.
curl -fsS -D "$WORK/result1.head" "http://$ADDR/v1/results/$ID1" -o "$WORK/result1.csv"
curl -fsS -D "$WORK/result2.head" "http://$ADDR/v1/results/$ID1" -o "$WORK/result2.csv"
cmp -s "$WORK/result1.csv" "$WORK/result2.csv" || {
  echo "FAIL result fetches are not byte-identical" >&2
  exit 1
}
grep -qi '^x-mobipriv-cache: hit' "$WORK/result2.head" || {
  echo "FAIL second result fetch is not a cache hit:" >&2
  cat "$WORK/result2.head" >&2
  exit 1
}
head -1 "$WORK/result1.csv" | grep -q '^user,trace,lat,lng,time$' || {
  echo "FAIL job result is not CSV" >&2
  exit 1
}
echo "ok        /v1/results/$ID1 byte-identical across fetches, cache hit"

# The synchronous path shares the same cache: an identical one-shot
# request is a hit with the identical body; a fresh key is a miss.
curl -s -D "$WORK/sync.head" --data-binary @"$WORK/body.csv" \
  "http://$ADDR/v1/anonymize?mechanism=promesse&alpha=100&seed=5" -o "$WORK/sync.csv"
grep -qi '^x-mobipriv-cache: hit' "$WORK/sync.head" || {
  echo "FAIL sync request for the job's key was not a cache hit:" >&2
  cat "$WORK/sync.head" >&2
  exit 1
}
cmp -s "$WORK/sync.csv" "$WORK/result1.csv" || {
  echo "FAIL sync and job bodies differ for one key" >&2
  exit 1
}
curl -s -D "$WORK/sync_cold.head" --data-binary @"$WORK/body.csv" \
  "http://$ADDR/v1/anonymize?mechanism=promesse&alpha=100&seed=6" -o /dev/null
grep -qi '^x-mobipriv-cache: miss' "$WORK/sync_cold.head" || {
  echo "FAIL fresh-key sync request was not a miss:" >&2
  cat "$WORK/sync_cold.head" >&2
  exit 1
}
echo "ok        sync /v1/anonymize shares the cache (hit on job key, miss on fresh key)"

# ---- binary wire format ------------------------------------------------

# The same dataset serialized as Bin must content-address to the same
# digest as its CSV rendering (digests are computed over the parsed
# dataset, not the wire bytes).
"$BIN/mobipriv-loadgen" --users 20 --seed 7 --dump-workload --format bin > "$WORK/body.bin"
curl -fsS -H 'Content-Type: application/octet-stream' \
  --data-binary @"$WORK/body.bin" "http://$ADDR/v1/datasets?format=bin" > "$WORK/register_bin.json"
BIN_DIGEST=$(sed -n 's/.*"digest":"\([0-9a-f]\{16\}\)".*/\1/p' "$WORK/register_bin.json")
if [ "$BIN_DIGEST" != "$DIGEST" ]; then
  echo "FAIL bin upload digest '$BIN_DIGEST' != csv digest '$DIGEST'" >&2
  cat "$WORK/register_bin.json" >&2
  exit 1
fi
grep -q '"registered":"exists"' "$WORK/register_bin.json" || {
  echo "FAIL bin re-upload of a known dataset did not report exists" >&2
  cat "$WORK/register_bin.json" >&2
  exit 1
}
echo "ok        /v1/datasets?format=bin digest matches CSV ($DIGEST)"

# Bin-in, Bin-out anonymization: 200, octet-stream, MPB1-framed body,
# and the replay served from the result cache.
STATUS=$(curl -s -D "$WORK/bin1.head" -o "$WORK/bin1.out" -w '%{http_code}' \
  --data-binary @"$WORK/body.bin" \
  "http://$ADDR/v1/anonymize?mechanism=promesse&alpha=100&seed=5&format=bin")
if [ "$STATUS" != 200 ]; then
  echo "FAIL format=bin anonymize -> HTTP $STATUS" >&2
  cat "$WORK/bin1.out" >&2
  exit 1
fi
grep -qi '^content-type: application/octet-stream' "$WORK/bin1.head" || {
  echo "FAIL format=bin response is not octet-stream:" >&2
  cat "$WORK/bin1.head" >&2
  exit 1
}
[ "$(head -c 4 "$WORK/bin1.out")" = "MPB1" ] || {
  echo "FAIL format=bin response lacks the MPB1 magic" >&2
  exit 1
}
curl -s -D "$WORK/bin2.head" -o "$WORK/bin2.out" \
  --data-binary @"$WORK/body.bin" \
  "http://$ADDR/v1/anonymize?mechanism=promesse&alpha=100&seed=5&format=bin"
cmp -s "$WORK/bin1.out" "$WORK/bin2.out" || {
  echo "FAIL bin responses are not byte-identical across fetches" >&2
  exit 1
}
grep -qi '^x-mobipriv-cache: hit' "$WORK/bin2.head" || {
  echo "FAIL bin replay was not a cache hit:" >&2
  cat "$WORK/bin2.head" >&2
  exit 1
}
echo "ok        format=bin anonymize round-trip (MPB1 body, cache hit on replay)"

# Server-side accounting: no failed jobs, and the job key computed once.
curl -fsS "http://$ADDR/v1/stats" > "$WORK/stats.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -c "
import json
d = json.load(open('$WORK/stats.json'))
assert d['jobs']['failed'] == 0, d
assert d['jobs']['done'] >= 1, d
assert d['cache_hits'] >= 3, d
" || {
    echo "FAIL /v1/stats accounting:" >&2
    cat "$WORK/stats.json" >&2
    exit 1
  }
fi
grep -q '"failed":0' "$WORK/stats.json" || {
  echo "FAIL /v1/stats reports failed jobs:" >&2
  cat "$WORK/stats.json" >&2
  exit 1
}
echo "ok        /v1/stats reports zero failed jobs"

# loadgen --jobs: register-once/publish-many replay must see zero
# failures (exit 1 + per-status breakdown otherwise).
"$BIN/mobipriv-loadgen" --addr "$ADDR" --users 20 --seed 7 \
  --requests 8 --distinct 2 --concurrency 2 --jobs \
  --mechanism promesse --query 'alpha=100' > "$WORK/loadgen.out" || {
  echo "FAIL loadgen --jobs reported failures:" >&2
  cat "$WORK/loadgen.out" >&2
  exit 1
}
grep -q 'hit rate:' "$WORK/loadgen.out" || {
  echo "FAIL loadgen --jobs printed no hit rate:" >&2
  cat "$WORK/loadgen.out" >&2
  exit 1
}
echo "ok        loadgen --jobs replay, zero failures ($(grep 'hit rate:' "$WORK/loadgen.out"))"

# loadgen scrapes /metrics itself and prints the server-side delta.
grep -q '^server:   requests ' "$WORK/loadgen.out" || {
  echo "FAIL loadgen printed no server-side metrics delta:" >&2
  cat "$WORK/loadgen.out" >&2
  exit 1
}
echo "ok        loadgen printed the server-side /metrics delta"

# ---- observability -----------------------------------------------------

# After everything above, the server's own counters must have moved:
# requests served, at least one cache hit, zero failed jobs, and at
# least one latency histogram with observations.
curl -fsS "http://$ADDR/metrics" > "$WORK/metrics.txt"
grep -q '^# TYPE mobipriv_http_requests_total counter' "$WORK/metrics.txt" || {
  echo "FAIL /metrics lacks the requests_total family:" >&2
  head -40 "$WORK/metrics.txt" >&2
  exit 1
}
awk '$1 ~ /^mobipriv_http_requests_total/ { sum += $2 } END { exit !(sum > 0) }' \
  "$WORK/metrics.txt" || {
  echo "FAIL /metrics reports zero requests served" >&2
  exit 1
}
awk '$1 == "mobipriv_cache_hits_total" { hits = $2 } END { exit !(hits >= 1) }' \
  "$WORK/metrics.txt" || {
  echo "FAIL /metrics reports no cache hits" >&2
  exit 1
}
awk '$1 == "mobipriv_jobs_failed_total" { failed = $2 } END { exit !(failed == 0) }' \
  "$WORK/metrics.txt" || {
  echo "FAIL /metrics reports failed jobs" >&2
  exit 1
}
awk '$1 ~ /_count(\{|$)/ { if ($2 > 0) found = 1 } END { exit !found }' \
  "$WORK/metrics.txt" || {
  echo "FAIL /metrics has no histogram with observations" >&2
  exit 1
}
echo "ok        /metrics counters moved (requests > 0, hits >= 1, failed jobs == 0)"

# A trace id handed out on a response resolves to a span timeline.
TRACE=$(curl -s -D - --data-binary @"$WORK/body.csv" \
  "http://$ADDR/v1/anonymize?mechanism=raw&seed=42" -o /dev/null \
  | sed -n 's/^x-mobipriv-trace: \([0-9a-f]*\).*/\1/p')
if [ -z "$TRACE" ]; then
  echo "FAIL response carried no x-mobipriv-trace header" >&2
  exit 1
fi
curl -fsS "http://$ADDR/v1/traces/$TRACE" | grep -q '"stage":"parse"' || {
  echo "FAIL /v1/traces/$TRACE has no parse span" >&2
  exit 1
}
echo "ok        trace $TRACE resolves to a span timeline"

# ---- durability: kill -9, restart, byte-identical warm hits ------------

DATA_DIR="$WORK/data"
start_persistent() {
  local log="$1"
  "$BIN/mobipriv-serve" --addr 127.0.0.1:0 --workers 2 --data-dir "$DATA_DIR" \
    > "$log" 2>&1 &
  SERVER2_PID=$!
  ADDR2=""
  for _ in $(seq 100); do
    ADDR2=$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$log")
    [ -n "$ADDR2" ] && break
    sleep 0.1
  done
  if [ -z "$ADDR2" ]; then
    echo "persistent server did not start:" >&2
    cat "$log" >&2
    exit 1
  fi
}

start_persistent "$WORK/serve2.log"
echo "server:   http://$ADDR2 (pid $SERVER2_PID, data-dir $DATA_DIR)"

curl -fsS --data-binary @"$WORK/body.csv" "http://$ADDR2/v1/datasets" > "$WORK/p_register.json"
P_DIGEST=$(sed -n 's/.*"digest":"\([0-9a-f]\{16\}\)".*/\1/p' "$WORK/p_register.json")
[ -n "$P_DIGEST" ] || { echo "FAIL persistent register returned no digest" >&2; exit 1; }
curl -s -X POST \
  "http://$ADDR2/v1/jobs?dataset=$P_DIGEST&mechanism=promesse&alpha=100&seed=7" \
  -o "$WORK/p_job.json"
P_ID=$(sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p' "$WORK/p_job.json")
[ -n "$P_ID" ] || { echo "FAIL persistent job submission:" >&2; cat "$WORK/p_job.json" >&2; exit 1; }
for _ in $(seq 100); do
  curl -fsS "http://$ADDR2/v1/jobs/$P_ID" > "$WORK/p_status.json"
  grep -q '"status":"done"' "$WORK/p_status.json" && break
  sleep 0.1
done
grep -q '"status":"done"' "$WORK/p_status.json" || {
  echo "FAIL persistent job never reached done:" >&2
  cat "$WORK/p_status.json" >&2
  exit 1
}
curl -fsS "http://$ADDR2/v1/results/$P_ID" -o "$WORK/p_before.csv"
echo "ok        persistent job $P_ID done ($(wc -c < "$WORK/p_before.csv") bytes)"

# A raw-mechanism job: its result body is the dataset's canonical CSV,
# so its body digest equals the dataset digest — the blob-kind
# namespacing (d_/r_) is what keeps the two files apart. Both must
# survive the crash below intact.
curl -s -X POST "http://$ADDR2/v1/jobs?dataset=$P_DIGEST&mechanism=raw" \
  -o "$WORK/p_rawjob.json"
P_RAW_ID=$(sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p' "$WORK/p_rawjob.json")
[ -n "$P_RAW_ID" ] || { echo "FAIL raw job submission:" >&2; cat "$WORK/p_rawjob.json" >&2; exit 1; }
for _ in $(seq 100); do
  curl -fsS "http://$ADDR2/v1/jobs/$P_RAW_ID" > "$WORK/p_rawstatus.json"
  grep -q '"status":"done"' "$WORK/p_rawstatus.json" && break
  sleep 0.1
done
grep -q '"status":"done"' "$WORK/p_rawstatus.json" || {
  echo "FAIL raw job never reached done:" >&2
  cat "$WORK/p_rawstatus.json" >&2
  exit 1
}
curl -fsS "http://$ADDR2/v1/results/$P_RAW_ID" -o "$WORK/p_raw_before.csv"
echo "ok        raw job $P_RAW_ID done (body digest collides with dataset digest)"

kill -9 "$SERVER2_PID"
wait "$SERVER2_PID" 2> /dev/null || true
echo "ok        server killed with SIGKILL mid-flight"

start_persistent "$WORK/serve3.log"
echo "server:   http://$ADDR2 (pid $SERVER2_PID, warm restart)"

curl -fsS "http://$ADDR2/v1/datasets/$P_DIGEST" > /dev/null || {
  echo "FAIL dataset $P_DIGEST lost across restart" >&2
  exit 1
}
curl -fsS -D "$WORK/p_after.head" "http://$ADDR2/v1/results/$P_ID" -o "$WORK/p_after.csv" || {
  echo "FAIL result $P_ID lost across restart" >&2
  exit 1
}
cmp -s "$WORK/p_before.csv" "$WORK/p_after.csv" || {
  echo "FAIL restart result is not byte-identical" >&2
  exit 1
}
grep -qi '^x-mobipriv-cache: hit' "$WORK/p_after.head" || {
  echo "FAIL restart result was recomputed (not a cache hit):" >&2
  cat "$WORK/p_after.head" >&2
  exit 1
}
echo "ok        warm restart serves $P_ID byte-identical, cache hit"

curl -fsS -D "$WORK/p_raw_after.head" "http://$ADDR2/v1/results/$P_RAW_ID" \
  -o "$WORK/p_raw_after.csv" || {
  echo "FAIL raw result $P_RAW_ID lost across restart" >&2
  exit 1
}
cmp -s "$WORK/p_raw_before.csv" "$WORK/p_raw_after.csv" || {
  echo "FAIL restart raw result is not byte-identical" >&2
  exit 1
}
grep -qi '^x-mobipriv-cache: hit' "$WORK/p_raw_after.head" || {
  echo "FAIL restart raw result was recomputed (not a cache hit):" >&2
  cat "$WORK/p_raw_after.head" >&2
  exit 1
}
echo "ok        warm restart serves raw result $P_RAW_ID despite digest collision"

# The recovered cache answers a whole loadgen --jobs replay of the
# pre-crash key (same workload seed, same mechanism/alpha/seed) without
# a single recomputation: every request is a hit.
"$BIN/mobipriv-loadgen" --addr "$ADDR2" --users 20 --seed 7 \
  --requests 6 --distinct 1 --concurrency 2 --jobs \
  --mechanism promesse --query 'alpha=100' > "$WORK/p_loadgen.out" || {
  echo "FAIL loadgen --jobs against the recovered server failed:" >&2
  cat "$WORK/p_loadgen.out" >&2
  exit 1
}
grep -q 'hit rate: 5/6 ' "$WORK/p_loadgen.out" || {
  echo "FAIL recovered replay was not all cache hits:" >&2
  cat "$WORK/p_loadgen.out" >&2
  exit 1
}
# Zero recomputation since boot: even loadgen's cold probe was answered
# from the journal-recovered cache.
curl -fsS "http://$ADDR2/v1/stats" | grep -q '"computations":0' || {
  echo "FAIL recovered server recomputed a key it had already served" >&2
  exit 1
}
echo "ok        recovered server answers loadgen ($(grep 'hit rate:' "$WORK/p_loadgen.out"))"

kill -9 "$SERVER2_PID" 2> /dev/null || true
SERVER2_PID=""

echo "service smoke passed"
