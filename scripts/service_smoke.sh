#!/usr/bin/env bash
# Service smoke test (used by CI and runnable locally after
# `cargo build --release -p mobipriv-service --bins`):
#
#   1. boots mobipriv-serve on an ephemeral port,
#   2. POSTs a small synthetic dataset through each per-trace mechanism,
#   3. asserts HTTP 200 + parseable CSV back,
#   4. kills the server on exit.
set -euo pipefail

BIN=${BIN:-target/release}
WORK=$(mktemp -d)
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

"$BIN/mobipriv-loadgen" --users 20 --seed 7 --dump-workload > "$WORK/body.csv"
echo "workload: $(wc -l < "$WORK/body.csv") CSV lines"

"$BIN/mobipriv-serve" --addr 127.0.0.1:0 --workers 2 > "$WORK/serve.log" 2>&1 &
SERVER_PID=$!
ADDR=""
for _ in $(seq 100); do
  ADDR=$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$WORK/serve.log")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "server did not start:" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi
echo "server:   http://$ADDR (pid $SERVER_PID)"

curl -fsS "http://$ADDR/healthz" > /dev/null
curl -fsS "http://$ADDR/v1/mechanisms" | grep -q promesse

# Every per-trace mechanism of the catalogue (GET /v1/mechanisms).
for Q in \
  'mechanism=raw' \
  'mechanism=pseudonymize' \
  'mechanism=pseudonymize&per=trace' \
  'mechanism=promesse&alpha=100' \
  'mechanism=geoind&epsilon=0.01'
do
  STATUS=$(curl -s -o "$WORK/out.csv" -w '%{http_code}' \
    --data-binary @"$WORK/body.csv" \
    "http://$ADDR/v1/anonymize?$Q&seed=42")
  if [ "$STATUS" != 200 ]; then
    echo "FAIL $Q -> HTTP $STATUS" >&2
    cat "$WORK/out.csv" >&2
    exit 1
  fi
  head -1 "$WORK/out.csv" | grep -q '^user,trace,lat,lng,time$' || {
    echo "FAIL $Q: response is not CSV" >&2
    exit 1
  }
  awk -F, 'NR > 1 && NF != 5 { exit 1 }' "$WORK/out.csv" || {
    echo "FAIL $Q: malformed CSV row" >&2
    exit 1
  }
  echo "ok        $Q ($(wc -l < "$WORK/out.csv") lines back)"
done

echo "service smoke passed"
