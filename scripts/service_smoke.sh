#!/usr/bin/env bash
# Service smoke test (used by CI and runnable locally after
# `cargo build --release -p mobipriv-service --bins`):
#
#   1. boots mobipriv-serve on an ephemeral port,
#   2. POSTs a small synthetic dataset through each per-trace mechanism,
#   3. asserts HTTP 200 + parseable CSV back,
#   4. GETs /v1/evaluate matrix cells and asserts parseable JSON back,
#   5. kills the server on exit.
set -euo pipefail

BIN=${BIN:-target/release}
WORK=$(mktemp -d)
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

"$BIN/mobipriv-loadgen" --users 20 --seed 7 --dump-workload > "$WORK/body.csv"
echo "workload: $(wc -l < "$WORK/body.csv") CSV lines"

"$BIN/mobipriv-serve" --addr 127.0.0.1:0 --workers 2 > "$WORK/serve.log" 2>&1 &
SERVER_PID=$!
ADDR=""
for _ in $(seq 100); do
  ADDR=$(sed -n 's#.*http://\([0-9.:]*\).*#\1#p' "$WORK/serve.log")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "server did not start:" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi
echo "server:   http://$ADDR (pid $SERVER_PID)"

curl -fsS "http://$ADDR/healthz" > /dev/null
curl -fsS "http://$ADDR/v1/mechanisms" | grep -q promesse

# Every per-trace mechanism of the catalogue (GET /v1/mechanisms).
for Q in \
  'mechanism=raw' \
  'mechanism=pseudonymize' \
  'mechanism=pseudonymize&per=trace' \
  'mechanism=promesse&alpha=100' \
  'mechanism=geoind&epsilon=0.01'
do
  STATUS=$(curl -s -o "$WORK/out.csv" -w '%{http_code}' \
    --data-binary @"$WORK/body.csv" \
    "http://$ADDR/v1/anonymize?$Q&seed=42")
  if [ "$STATUS" != 200 ]; then
    echo "FAIL $Q -> HTTP $STATUS" >&2
    cat "$WORK/out.csv" >&2
    exit 1
  fi
  head -1 "$WORK/out.csv" | grep -q '^user,trace,lat,lng,time$' || {
    echo "FAIL $Q: response is not CSV" >&2
    exit 1
  }
  awk -F, 'NR > 1 && NF != 5 { exit 1 }' "$WORK/out.csv" || {
    echo "FAIL $Q: malformed CSV row" >&2
    exit 1
  }
  echo "ok        $Q ($(wc -l < "$WORK/out.csv") lines back)"
done

# The evaluation matrix endpoint: one filtered cell per scenario family
# must come back as 200 + parseable schema-versioned JSON.
for Q in \
  'scenario=crossing_paths&mechanism=promesse_a100' \
  'scenario=crossing_paths&mechanism=raw&seed=7' \
  'scenario=random_walkers&mechanism=geoind_e0.01'
do
  STATUS=$(curl -s -o "$WORK/eval.json" -w '%{http_code}' \
    "http://$ADDR/v1/evaluate?$Q")
  if [ "$STATUS" != 200 ]; then
    echo "FAIL /v1/evaluate?$Q -> HTTP $STATUS" >&2
    cat "$WORK/eval.json" >&2
    exit 1
  fi
  if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "$WORK/eval.json" > /dev/null || {
      echo "FAIL /v1/evaluate?$Q: response is not valid JSON" >&2
      head -c 400 "$WORK/eval.json" >&2
      exit 1
    }
  fi
  grep -q '"schema_version":1' "$WORK/eval.json" || {
    echo "FAIL /v1/evaluate?$Q: schema_version missing" >&2
    exit 1
  }
  grep -q '"digest":"' "$WORK/eval.json" || {
    echo "FAIL /v1/evaluate?$Q: no cell digest in report" >&2
    exit 1
  }
  echo "ok        /v1/evaluate?$Q ($(wc -c < "$WORK/eval.json") bytes back)"
done

# Bad parameters must 400, not 500.
STATUS=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/evaluate?scenario=atlantis")
if [ "$STATUS" != 400 ]; then
  echo "FAIL /v1/evaluate?scenario=atlantis -> HTTP $STATUS (expected 400)" >&2
  exit 1
fi
echo "ok        /v1/evaluate rejects unknown scenario with 400"

echo "service smoke passed"
